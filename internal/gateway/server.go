package gateway

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// Serve runs the gateway's HTTP server on ln until the listener
// closes. The listener is wrapped with the connection cap
// (Options.MaxConns), and the server enforces header/idle timeouts on
// top of the per-request handler timeout.
func (g *Gateway) Serve(ln net.Listener) error {
	if g.opts.MaxConns > 0 {
		ln = limitListener(ln, g.opts.MaxConns)
	}
	srv := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       g.opts.RequestTimeout + 5*time.Second,
		WriteTimeout:      g.opts.RequestTimeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// limitListener caps concurrent accepted connections: Accept blocks
// while the cap is reached, so the kernel's backlog — not gateway
// memory — absorbs the excess, and each connection releases its slot
// exactly once on Close.
func limitListener(ln net.Listener, max int) net.Listener {
	return &limitedListener{Listener: ln, slots: make(chan struct{}, max)}
}

type limitedListener struct {
	net.Listener
	slots chan struct{}
}

func (l *limitedListener) Accept() (net.Conn, error) {
	l.slots <- struct{}{}
	conn, err := l.Listener.Accept()
	if err != nil {
		<-l.slots
		return nil, err
	}
	return &limitedConn{Conn: conn, release: func() { <-l.slots }}, nil
}

type limitedConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
