package gateway

import (
	"net"
	"net/http"
	"sync"
	"time"

	"oasis/internal/clock"
)

// rateLimiter is a per-key token bucket: each client key accrues
// `rate` tokens per second up to `burst`, and one request costs one
// token. A refused request reports how long until a token is due, so
// the handler can answer with an honest Retry-After.
type rateLimiter struct {
	rate  float64
	burst float64
	clk   clock.Clock

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the key table; when it fills, the refill pass
// evicts buckets already back at full burst (an idle client's bucket
// carries no information — recreating it is free).
const maxBuckets = 65536

func newRateLimiter(rate float64, burst int, clk clock.Clock) *rateLimiter {
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		clk:     clk,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from key's bucket. When the bucket is empty
// it reports (wait, false): the duration until the next token accrues.
func (l *rateLimiter) allow(key string, now time.Time) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			for k, old := range l.buckets {
				if old.tokens >= l.burst {
					delete(l.buckets, k)
				}
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		deficit := 1 - b.tokens
		wait := time.Duration(deficit / l.rate * float64(time.Second))
		if wait < time.Second {
			wait = time.Second // Retry-After granularity is whole seconds
		}
		return wait, false
	}
	b.tokens--
	return 0, true
}

// clientKey names the caller for rate-limiting purposes: the remote
// IP, which is the identity the transport actually authenticates at
// this layer (certificate-bound identities are enforced downstream by
// Validate).
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
