package gateway_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/gateway"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

var updateGolden = flag.Bool("update", false, "rewrite golden HTTP vectors from this run")

// wireExchange is one recorded request/response pair. The vectors are
// the gateway's compatibility contract: a change to any file under
// testdata/ is a wire-format change and must be deliberate.
type wireExchange struct {
	Label    string            `json:"label"`
	Path     string            `json:"path"`
	Status   int               `json:"status"`
	Headers  map[string]string `json:"headers,omitempty"`
	Request  json.RawMessage   `json:"request"`
	Response json.RawMessage   `json:"response"`
}

// record performs the request and captures the exchange.
func record(t *testing.T, h http.Handler, label, path string, body any) wireExchange {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	hdr := map[string]string{"Content-Type": rec.Header().Get("Content-Type")}
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		hdr["Retry-After"] = ra
	}
	return wireExchange{
		Label: label, Path: path, Status: rec.Code, Headers: hdr,
		Request:  json.RawMessage(raw),
		Response: json.RawMessage(bytes.TrimSpace(rec.Body.Bytes())),
	}
}

func checkGolden(t *testing.T, name string, exchanges []wireExchange) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(exchanges); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden vector (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("wire format drifted from %s (re-run with -update if deliberate)\n got: %s\nwant: %s",
			path, buf.Bytes(), want)
	}
}

// TestGoldenIssueIntrospectRevoke walks one token through its whole
// life — issue, introspect while active, revoke, introspect after,
// re-revoke — and pins every byte on the wire.
func TestGoldenIssueIntrospectRevoke(t *testing.T) {
	w := newWorld(t, gateway.Options{})
	h := w.gw.Handler()
	c := w.client("cam")
	loginCert := w.logOn(c, "dm")

	issueReq := gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Args:  []value.Value{uid("dm")},
		Creds: []*cert.RMC{loginCert},
	}
	var out []wireExchange
	ex := record(t, h, "issue member token", "/v1/token", issueReq)
	out = append(out, ex)
	var issued gateway.TokenResponse
	if err := json.Unmarshal(ex.Response, &issued); err != nil || ex.Status != http.StatusOK {
		t.Fatalf("issue failed: status %d body %s", ex.Status, ex.Response)
	}
	out = append(out,
		record(t, h, "introspect active token", "/v1/introspect", gateway.IntrospectRequest{Token: issued.Token}),
		record(t, h, "revoke token", "/v1/revoke", gateway.RevokeRequest{Token: issued.Token}),
		record(t, h, "introspect revoked token", "/v1/introspect", gateway.IntrospectRequest{Token: issued.Token}),
		record(t, h, "revoke again (idempotent)", "/v1/revoke", gateway.RevokeRequest{Token: issued.Token}),
	)
	checkGolden(t, "lifecycle.json", out)
}

// TestGoldenErrors pins the OAuth error envelope for the refusal
// paths: malformed body, missing fields, policy denial, unknown token.
func TestGoldenErrors(t *testing.T) {
	w := newWorld(t, gateway.Options{})
	h := w.gw.Handler()
	var out []wireExchange

	// Malformed JSON goes through record's marshalling, so hand-roll it.
	req := httptest.NewRequest(http.MethodPost, "/v1/token", bytes.NewReader([]byte(`{"role":`)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out = append(out, wireExchange{
		Label: "malformed body", Path: "/v1/token", Status: rec.Code,
		Headers:  map[string]string{"Content-Type": rec.Header().Get("Content-Type")},
		Request:  json.RawMessage(`"{\"role\":"`),
		Response: json.RawMessage(bytes.TrimSpace(rec.Body.Bytes())),
	})

	out = append(out, record(t, h, "missing role", "/v1/token",
		gateway.TokenRequest{Client: w.client("ely")}))

	c := w.client("cam")
	login := w.logOn(c, "intruder")
	out = append(out, record(t, h, "policy refuses entry", "/v1/token",
		gateway.TokenRequest{
			Client: c, Rolefile: "main", Role: "Member",
			Args: []value.Value{uid("intruder")}, Creds: []*cert.RMC{login},
		}))

	out = append(out, record(t, h, "introspect unknown token", "/v1/introspect",
		gateway.IntrospectRequest{Token: "00ff00ff00ff00ff00ff00ff00ff00ff"}))
	out = append(out, record(t, h, "revoke unknown token (idempotent)", "/v1/revoke",
		gateway.RevokeRequest{Token: "00ff00ff00ff00ff00ff00ff00ff00ff"}))
	checkGolden(t, "errors.json", out)
}

// TestGoldenExpiry pins the expired-token introspection answer: the
// certificate's deadline passes and the token reports only inactive.
func TestGoldenExpiry(t *testing.T) {
	clk := clock.NewVirtual(time.Date(1997, 6, 1, 9, 0, 0, 0, time.UTC))
	login, err := oasis.New("Login", clk, nil, oasis.Options{CertTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		t.Fatal(err)
	}
	gw := gateway.New(login, gateway.Options{Rand: &seqReader{}})
	h := gw.Handler()
	c := ids.NewHostAuthority("ely", clk.Now()).NewDomain()
	ex := record(t, h, "issue short-lived token", "/v1/token", gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{uid("dm"), value.Object("Login.host", "ely")},
	})
	var issued gateway.TokenResponse
	if err := json.Unmarshal(ex.Response, &issued); err != nil || ex.Status != http.StatusOK {
		t.Fatalf("issue failed: status %d body %s", ex.Status, ex.Response)
	}
	clk.Advance(2 * time.Hour)
	out := []wireExchange{
		ex,
		record(t, h, "introspect expired token", "/v1/introspect",
			gateway.IntrospectRequest{Token: issued.Token}),
	}
	checkGolden(t, "expired.json", out)
}

// TestGoldenRateLimited pins the 429 envelope including Retry-After.
func TestGoldenRateLimited(t *testing.T) {
	w := newWorld(t, gateway.Options{RatePerSec: 1, Burst: 1})
	h := w.gw.Handler()
	_ = record(t, h, "spend the budget", "/v1/introspect", gateway.IntrospectRequest{Token: "x"})
	out := []wireExchange{
		record(t, h, "rate limited", "/v1/introspect", gateway.IntrospectRequest{Token: "x"}),
	}
	checkGolden(t, "rate_limited.json", out)
}

// TestGoldenSaturated pins the 503 shed envelope.
func TestGoldenSaturated(t *testing.T) {
	w := newWorld(t, gateway.Options{
		Pressure:      func() int { return 99 },
		PressureLimit: 10,
	})
	out := []wireExchange{
		record(t, w.gw.Handler(), "mutating request shed under backpressure", "/v1/token",
			gateway.TokenRequest{Client: w.client("ely"), Rolefile: "main", Role: "Member"}),
	}
	checkGolden(t, "saturated.json", out)
}
