// Package gateway is the HTTP/JSON federation layer over the OASIS
// engine — the front door for heterogeneous clients (browsers, mobile
// apps, third-party services) that cannot speak the trusted-peer
// protocol of cmd/oasisd.
//
// It maps the engine's native vocabulary onto OAuth-shaped HTTP
// endpoints:
//
//	POST /v1/token       role entry (§3.2.2) as token issuance: an
//	                     opaque token bound to the issued role
//	                     membership certificate, with expiry derived
//	                     from the RMC and delegation-entry support
//	POST /v1/introspect  RMC status as RFC 7662-style introspection:
//	                     active / roles / args / issuer / expiry,
//	                     answered live from the credential-record
//	                     store so revocation cascades are visible the
//	                     instant they land
//	POST /v1/revoke      RFC 7009-style revocation: idempotent, 200 on
//	                     an already-revoked or unknown token, routed
//	                     through the engine's revocation surface
//	                     (RevokeDirect, Revoke, RevokeByRole)
//
// The gateway holds no validity state of its own: a token maps to a
// live RMC whose credential record the engine consults on every
// introspection, so a revocation storm invalidates any number of
// tokens without the gateway scanning anything.
//
// Load discipline: per-client token-bucket rate limiting (429 +
// Retry-After), a concurrent-connection cap, per-request timeouts, and
// backpressure — when the notification plane's queues signal
// saturation, mutating requests are shed with 503 + Retry-After
// instead of queueing without bound.
package gateway

import (
	"crypto/rand"
	"io"
	"net/http"
	"time"

	"oasis/internal/clock"
	"oasis/internal/oasis"
)

// Options configure a Gateway.
type Options struct {
	// Rand supplies token-id entropy; nil means crypto/rand. Tests
	// substitute a deterministic reader so golden vectors are stable.
	Rand io.Reader

	// Clock drives expiry and rate-limit refill; nil means the
	// service's own clock.
	Clock clock.Clock

	// RatePerSec and Burst shape the per-client token bucket (keyed by
	// the caller's remote IP). RatePerSec <= 0 disables rate limiting;
	// Burst <= 0 defaults to 2×RatePerSec (minimum 1).
	RatePerSec float64
	Burst      int

	// MaxConns caps concurrently accepted connections in Serve; 0
	// means no cap.
	MaxConns int

	// RequestTimeout bounds one request's handling end to end; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration

	// Pressure reports the notification plane's queued-notification
	// depth; PressureLimit is the saturation threshold at or above
	// which the gateway sheds mutating requests (issue, revoke) with
	// 503 + Retry-After. A nil Pressure or zero limit disables
	// backpressure.
	Pressure      func() int
	PressureLimit int

	// RetryAfter is the hint returned with 429 and 503 responses when
	// no better estimate exists; 0 means DefaultRetryAfter.
	RetryAfter time.Duration
}

// Defaults for zero Options fields.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultRetryAfter     = 2 * time.Second
)

// Gateway exposes one OASIS service over HTTP/JSON.
type Gateway struct {
	svc    *oasis.Service
	clk    clock.Clock
	tokens *tokenStore
	limit  *rateLimiter
	opts   Options

	mux http.Handler
}

// New creates a gateway over the service. The service's rolefiles must
// already be installed; the gateway adds no policy of its own.
func New(svc *oasis.Service, opts Options) *Gateway {
	if opts.Rand == nil {
		opts.Rand = rand.Reader
	}
	if opts.Clock == nil {
		opts.Clock = svc.Clock()
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	g := &Gateway{
		svc:    svc,
		clk:    opts.Clock,
		tokens: newTokenStore(opts.Rand),
		opts:   opts,
	}
	if opts.RatePerSec > 0 {
		burst := opts.Burst
		if burst <= 0 {
			burst = int(2 * opts.RatePerSec)
			if burst < 1 {
				burst = 1
			}
		}
		g.limit = newRateLimiter(opts.RatePerSec, burst, g.clk)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/token", g.guard(g.handleToken, true))
	mux.HandleFunc("/v1/introspect", g.guard(g.handleIntrospect, false))
	mux.HandleFunc("/v1/revoke", g.guard(g.handleRevoke, true))
	mux.HandleFunc("/v1/healthz", g.handleHealth)
	g.mux = http.TimeoutHandler(mux, opts.RequestTimeout,
		`{"error":"timeout","error_description":"request handling exceeded the gateway deadline"}`)
	return g
}

// Handler returns the gateway's HTTP handler (request timeout applied;
// connection limiting is Serve's job).
func (g *Gateway) Handler() http.Handler { return g.mux }

// TokenCount reports live (unexpired, unpurged) tokens, for tests and
// operational introspection.
func (g *Gateway) TokenCount() int { return g.tokens.len() }

// saturated reports whether the notification plane is at or past the
// configured pressure limit.
func (g *Gateway) saturated() bool {
	return g.opts.Pressure != nil && g.opts.PressureLimit > 0 &&
		g.opts.Pressure() >= g.opts.PressureLimit
}

// guard wraps a handler with the request-admission pipeline: method
// check, per-client rate limit, and — for mutating endpoints —
// notification-plane backpressure.
func (g *Gateway) guard(h http.HandlerFunc, mutates bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "invalid_request", "POST only")
			return
		}
		if g.limit != nil {
			if wait, ok := g.limit.allow(clientKey(r), g.clk.Now()); !ok {
				retryAfter(w, wait)
				writeError(w, http.StatusTooManyRequests, "rate_limited",
					"per-client request budget exhausted; honour Retry-After")
				return
			}
		}
		if mutates && g.saturated() {
			retryAfter(w, g.opts.RetryAfter)
			writeError(w, http.StatusServiceUnavailable, "overloaded",
				"notification plane saturated; honour Retry-After")
			return
		}
		h(w, r)
	}
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"service": g.svc.Name(),
		"tokens":  g.tokens.len(),
	})
}
