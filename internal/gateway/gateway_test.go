package gateway_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/gateway"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// seqReader is a deterministic token-entropy source, so tests (and the
// golden vectors) mint predictable ids.
type seqReader struct{ ctr byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		r.ctr++
		p[i] = r.ctr
	}
	return len(p), nil
}

const loginRolefile = `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`

// confRolefile exercises every issuance path the gateway fronts:
// plain entry, constrained entry, role-based revocation (|>*) and
// entry by election (<|*).
const confRolefile = `
Chair        <- Login.LoggedOn("jmb", h)*
Candidate(u) <- Login.LoggedOn(u, h)* : u in staff
Member(u)    <- Candidate(u)* |>* Chair
Deleg(u)     <- Login.LoggedOn(u, h)* <|* Chair
`

// world is a Login+Conf deployment with a gateway over Conf.
type world struct {
	t     *testing.T
	clk   *clock.Virtual
	net   *bus.Network
	login *oasis.Service
	conf  *oasis.Service
	gw    *gateway.Gateway
	hosts map[string]*ids.HostAuthority
}

func newWorld(t *testing.T, opts gateway.Options) *world {
	t.Helper()
	clk := clock.NewVirtual(time.Date(1997, 6, 1, 9, 0, 0, 0, time.UTC))
	n := bus.NewNetwork(clk)
	login, err := oasis.New("Login", clk, n, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		t.Fatal(err)
	}
	conf, err := oasis.New("Conf", clk, n, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conf.AddRolefile("main", confRolefile); err != nil {
		t.Fatal(err)
	}
	conf.Groups().AddMember("dm", "staff")
	if opts.Rand == nil {
		opts.Rand = &seqReader{}
	}
	return &world{
		t: t, clk: clk, net: n, login: login, conf: conf,
		gw:    gateway.New(conf, opts),
		hosts: make(map[string]*ids.HostAuthority),
	}
}

func (w *world) client(host string) ids.ClientID {
	ha, ok := w.hosts[host]
	if !ok {
		ha = ids.NewHostAuthority(host, w.clk.Now())
		w.hosts[host] = ha
	}
	return ha.NewDomain()
}

func (w *world) logOn(c ids.ClientID, user string) *cert.RMC {
	w.t.Helper()
	rmc, err := w.login.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", user),
			value.Object("Login.host", c.Host),
		},
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return rmc
}

func uid(u string) value.Value { return value.Object("Login.userid", u) }

// post performs one request against the handler and decodes the JSON
// body into out (if non-nil), returning the recorder for header and
// status checks.
func post(t *testing.T, h http.Handler, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: undecodable response %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec
}

func (w *world) issueMember(user string) (gateway.TokenResponse, *cert.RMC, ids.ClientID) {
	w.t.Helper()
	c := w.client("cam")
	loginCert := w.logOn(c, user)
	var res gateway.TokenResponse
	rec := post(w.t, w.gw.Handler(), "/v1/token", gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Args:  []value.Value{uid(user)},
		Creds: []*cert.RMC{loginCert},
	}, &res)
	if rec.Code != http.StatusOK {
		w.t.Fatalf("issue: status %d body %s", rec.Code, rec.Body.String())
	}
	return res, loginCert, c
}

func introspect(t *testing.T, h http.Handler, token string) gateway.IntrospectResponse {
	t.Helper()
	var res gateway.IntrospectResponse
	rec := post(t, h, "/v1/introspect", gateway.IntrospectRequest{Token: token}, &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("introspect: status %d body %s", rec.Code, rec.Body.String())
	}
	return res
}

func TestTokenLifecycle(t *testing.T) {
	w := newWorld(t, gateway.Options{})
	res, _, _ := w.issueMember("dm")
	if res.Token == "" || res.TokenType != "oasis" {
		t.Fatalf("bad token response: %+v", res)
	}
	if res.Issuer != "Conf" || len(res.Roles) == 0 {
		t.Fatalf("bad issuer/roles: %+v", res)
	}

	in := introspect(t, w.gw.Handler(), res.Token)
	if !in.Active {
		t.Fatalf("fresh token inactive: %+v", in)
	}
	if in.Issuer != "Conf" || in.Rolefile != "main" {
		t.Fatalf("introspection misreports issuer/rolefile: %+v", in)
	}
	found := false
	for _, r := range in.Roles {
		if r == "Member" {
			found = true
		}
	}
	if !found {
		t.Fatalf("introspection misses the Member role: %+v", in)
	}
	if len(in.Args) != 1 || !in.Args[0].Equal(uid("dm")) {
		t.Fatalf("introspection misreports args: %+v", in)
	}

	// Revoke, then introspection flips — live from the store.
	var rres gateway.RevokeResponse
	rec := post(t, w.gw.Handler(), "/v1/revoke", gateway.RevokeRequest{Token: res.Token}, &rres)
	if rec.Code != http.StatusOK || !rres.OK {
		t.Fatalf("revoke: status %d body %s", rec.Code, rec.Body.String())
	}
	if in := introspect(t, w.gw.Handler(), res.Token); in.Active {
		t.Fatal("revoked token still active")
	}
	// RFC 7009: revoking again (and revoking garbage) is 200.
	rec = post(t, w.gw.Handler(), "/v1/revoke", gateway.RevokeRequest{Token: res.Token}, &rres)
	if rec.Code != http.StatusOK {
		t.Fatalf("second revoke: status %d", rec.Code)
	}
	rec = post(t, w.gw.Handler(), "/v1/revoke", gateway.RevokeRequest{Token: "no-such-token"}, &rres)
	if rec.Code != http.StatusOK {
		t.Fatalf("unknown-token revoke: status %d", rec.Code)
	}
}

// TestRevocationCascadeVisible is the federation point: the login that
// justified a Conf membership is revoked at Login, the Modified event
// cascades across the bus, and the very next introspection reports
// inactive — the gateway keeps no validity state to go stale.
func TestRevocationCascadeVisible(t *testing.T) {
	w := newWorld(t, gateway.Options{})
	res, loginCert, c := w.issueMember("dm")
	if in := introspect(t, w.gw.Handler(), res.Token); !in.Active {
		t.Fatal("fresh token inactive")
	}
	if err := w.login.Exit(loginCert, c); err != nil {
		t.Fatal(err)
	}
	if in := introspect(t, w.gw.Handler(), res.Token); in.Active {
		t.Fatal("token survived upstream login revocation")
	}
}

func TestTokenExpiryFromRMC(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1000, 0))
	login, err := oasis.New("Login", clk, nil, oasis.Options{CertTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		t.Fatal(err)
	}
	gw := gateway.New(login, gateway.Options{Rand: &seqReader{}})
	c := ids.NewHostAuthority("ely", clk.Now()).NewDomain()
	var res gateway.TokenResponse
	rec := post(t, gw.Handler(), "/v1/token", gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{uid("dm"), value.Object("Login.host", "ely")},
	}, &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("issue: status %d body %s", rec.Code, rec.Body.String())
	}
	if res.ExpiresIn != 3600 {
		t.Fatalf("expires_in = %d, want 3600 (derived from the RMC)", res.ExpiresIn)
	}
	in := introspect(t, gw.Handler(), res.Token)
	if !in.Active || in.Exp == 0 {
		t.Fatalf("fresh token: %+v", in)
	}
	if in.Exp-in.Iat != 3600 {
		t.Fatalf("exp-iat = %d, want 3600", in.Exp-in.Iat)
	}
	clk.Advance(2 * time.Hour)
	if in := introspect(t, gw.Handler(), res.Token); in.Active {
		t.Fatal("expired token still active")
	}
	if n := gw.TokenCount(); n != 0 {
		t.Fatalf("expired token not dropped from the store: %d live", n)
	}
}

func TestDelegationEntry(t *testing.T) {
	w := newWorld(t, gateway.Options{})
	chairC := w.client("ely")
	chairLogin := w.logOn(chairC, "jmb")
	chair, err := w.conf.Enter(oasis.EnterRequest{
		Client: chairC, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{chairLogin},
	})
	if err != nil {
		t.Fatal(err)
	}
	deleg, _, err := w.conf.Delegate(oasis.DelegateRequest{
		Client: chairC, Rolefile: "main", Role: "Deleg",
		Args:        []value.Value{uid("dm")},
		ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	dmC := w.client("cam")
	dmLogin := w.logOn(dmC, "dm")
	var res gateway.TokenResponse
	rec := post(t, w.gw.Handler(), "/v1/token", gateway.TokenRequest{
		Client: dmC, Rolefile: "main", Role: "Deleg",
		Creds:      []*cert.RMC{dmLogin},
		Delegation: deleg,
	}, &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("delegated issue: status %d body %s", rec.Code, rec.Body.String())
	}
	if in := introspect(t, w.gw.Handler(), res.Token); !in.Active {
		t.Fatal("delegated token inactive")
	}
}

func TestRevokeByRoleAndByCertificate(t *testing.T) {
	w := newWorld(t, gateway.Options{})
	// Chair enters through the gateway too — their token is the
	// revoker credential.
	chairC := w.client("ely")
	chairLogin := w.logOn(chairC, "jmb")
	var chairRes gateway.TokenResponse
	rec := post(t, w.gw.Handler(), "/v1/token", gateway.TokenRequest{
		Client: chairC, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{chairLogin},
	}, &chairRes)
	if rec.Code != http.StatusOK {
		t.Fatalf("chair issue: status %d body %s", rec.Code, rec.Body.String())
	}

	memberRes, _, _ := w.issueMember("dm")
	if in := introspect(t, w.gw.Handler(), memberRes.Token); !in.Active {
		t.Fatal("member inactive before revocation")
	}

	// Role-based revocation: the chair names the instance parameters.
	var rres gateway.RevokeResponse
	rec = post(t, w.gw.Handler(), "/v1/revoke", gateway.RevokeRequest{
		RevokerToken: chairRes.Token, Rolefile: "main",
		Role: "Member", Args: []value.Value{uid("dm")},
	}, &rres)
	if rec.Code != http.StatusOK || !rres.OK {
		t.Fatalf("role-based revoke: status %d body %s", rec.Code, rec.Body.String())
	}
	if in := introspect(t, w.gw.Handler(), memberRes.Token); in.Active {
		t.Fatal("member survived role-based revocation")
	}
	// Idempotent: naming the same instance again is 200.
	rec = post(t, w.gw.Handler(), "/v1/revoke", gateway.RevokeRequest{
		RevokerToken: chairRes.Token, Rolefile: "main",
		Role: "Member", Args: []value.Value{uid("dm")},
	}, &rres)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat role-based revoke: status %d body %s", rec.Code, rec.Body.String())
	}
	// A non-revoker cannot eject anyone.
	rec = post(t, w.gw.Handler(), "/v1/revoke", gateway.RevokeRequest{
		RevokerToken: memberRes.Token, Rolefile: "main",
		Role: "Chair", Args: nil,
	}, nil)
	if rec.Code == http.StatusOK {
		t.Fatal("revocation accepted from a non-revoker")
	}

	// Revocation-certificate path: chair delegates, then revokes the
	// delegation through the gateway.
	chair, err := w.conf.Enter(oasis.EnterRequest{
		Client: chairC, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{chairLogin},
	})
	if err != nil {
		t.Fatal(err)
	}
	deleg, revCert, err := w.conf.Delegate(oasis.DelegateRequest{
		Client: chairC, Rolefile: "main", Role: "Deleg",
		Args:        []value.Value{uid("alice")},
		ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	aliceC := w.client("cam")
	aliceLogin := w.logOn(aliceC, "alice")
	var aliceRes gateway.TokenResponse
	rec = post(t, w.gw.Handler(), "/v1/token", gateway.TokenRequest{
		Client: aliceC, Rolefile: "main", Role: "Deleg",
		Creds: []*cert.RMC{aliceLogin}, Delegation: deleg,
	}, &aliceRes)
	if rec.Code != http.StatusOK {
		t.Fatalf("delegated issue: status %d body %s", rec.Code, rec.Body.String())
	}
	rec = post(t, w.gw.Handler(), "/v1/revoke", gateway.RevokeRequest{Revocation: revCert}, &rres)
	if rec.Code != http.StatusOK || !rres.OK {
		t.Fatalf("certificate revoke: status %d body %s", rec.Code, rec.Body.String())
	}
	if in := introspect(t, w.gw.Handler(), aliceRes.Token); in.Active {
		t.Fatal("delegated membership survived revocation certificate")
	}
	// Idempotent replay of the same revocation certificate.
	rec = post(t, w.gw.Handler(), "/v1/revoke", gateway.RevokeRequest{Revocation: revCert}, &rres)
	if rec.Code != http.StatusOK {
		t.Fatalf("replayed certificate revoke: status %d body %s", rec.Code, rec.Body.String())
	}
}

func TestMalformedRequests(t *testing.T) {
	w := newWorld(t, gateway.Options{})
	h := w.gw.Handler()

	// Not JSON.
	req := httptest.NewRequest(http.MethodPost, "/v1/token", bytes.NewReader([]byte("{nope")))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", rec.Code)
	}
	var e gateway.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Err != "invalid_request" {
		t.Fatalf("garbage body: %s", rec.Body.String())
	}

	// Missing role / missing client.
	if rec := post(t, h, "/v1/token", gateway.TokenRequest{Client: w.client("ely")}, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing role: status %d", rec.Code)
	}
	if rec := post(t, h, "/v1/token", gateway.TokenRequest{Role: "Member"}, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing client: status %d", rec.Code)
	}
	// Introspect and revoke with nothing in them.
	if rec := post(t, h, "/v1/introspect", gateway.IntrospectRequest{}, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty introspect: status %d", rec.Code)
	}
	if rec := post(t, h, "/v1/revoke", gateway.RevokeRequest{}, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty revoke: status %d", rec.Code)
	}
	// Entry the policy refuses.
	c := w.client("ely")
	login := w.logOn(c, "intruder")
	rec2 := post(t, h, "/v1/token", gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("intruder")}, Creds: []*cert.RMC{login},
	}, &e)
	if rec2.Code != http.StatusBadRequest || e.Err != "invalid_grant" {
		t.Fatalf("refused entry: status %d body %s", rec2.Code, rec2.Body.String())
	}
	// Wrong method.
	req = httptest.NewRequest(http.MethodGet, "/v1/token", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", rec.Code)
	}
	// Introspecting a guessed token reveals nothing but inactive.
	in := introspect(t, h, "0123456789abcdef0123456789abcdef")
	if in.Active || in.Issuer != "" || in.Roles != nil {
		t.Fatalf("guessed token leaked state: %+v", in)
	}
}

func TestRateLimitRetryAfter(t *testing.T) {
	w := newWorld(t, gateway.Options{RatePerSec: 1, Burst: 2})
	h := w.gw.Handler()
	// Burst of 2 is admitted; the third is refused with Retry-After.
	for i := 0; i < 2; i++ {
		if rec := post(t, h, "/v1/introspect", gateway.IntrospectRequest{Token: "x"}, nil); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	rec := post(t, h, "/v1/introspect", gateway.IntrospectRequest{Token: "x"}, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over budget: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 without a usable Retry-After: %q", ra)
	}
	// The clock refills the bucket.
	w.clk.Advance(3 * time.Second)
	if rec := post(t, h, "/v1/introspect", gateway.IntrospectRequest{Token: "x"}, nil); rec.Code != http.StatusOK {
		t.Fatalf("after refill: status %d", rec.Code)
	}
}

func TestBackpressureShedsMutations(t *testing.T) {
	pending := 0
	w := newWorld(t, gateway.Options{
		Pressure:      func() int { return pending },
		PressureLimit: 10,
	})
	h := w.gw.Handler()
	res, _, _ := w.issueMember("dm")

	pending = 10 // saturation
	c := w.client("cam")
	login := w.logOn(c, "dm")
	rec := post(t, h, "/v1/token", gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("dm")}, Creds: []*cert.RMC{login},
	}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("issue under saturation: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	rec = post(t, h, "/v1/revoke", gateway.RevokeRequest{Token: res.Token}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("revoke under saturation: status %d, want 503", rec.Code)
	}
	// Introspection — the read path clients use to honour revocations —
	// stays available.
	if in := introspect(t, h, res.Token); !in.Active {
		t.Fatal("introspection unavailable or wrong under saturation")
	}
	// Pressure clears; the shed requests succeed on retry.
	pending = 0
	rec = post(t, h, "/v1/revoke", gateway.RevokeRequest{Token: res.Token}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("revoke after pressure cleared: status %d", rec.Code)
	}
}

// TestConnectionLimit proves Serve's listener cap: with MaxConns 1,
// a second connection is not accepted until the first closes.
func TestConnectionLimit(t *testing.T) {
	w := newWorld(t, gateway.Options{MaxConns: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.gw.Serve(ln)
	}()
	defer func() { _ = ln.Close(); <-done }()

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}
	roundTrip := func(conn net.Conn, deadline time.Duration) error {
		if err := conn.SetDeadline(time.Now().Add(deadline)); err != nil {
			return err
		}
		if _, err := io.WriteString(conn, "POST /v1/healthz HTTP/1.1\r\nHost: gw\r\nContent-Length: 0\r\n\r\n"); err != nil {
			return err
		}
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		return err
	}

	first := dial()
	if err := roundTrip(first, 5*time.Second); err != nil {
		t.Fatalf("first connection: %v", err)
	}
	// The slot is held (keep-alive); a second connection can connect
	// (kernel backlog) but gets no service.
	second := dial()
	if err := roundTrip(second, 300*time.Millisecond); err == nil {
		t.Fatal("second connection served while the cap was held")
	}
	// Releasing the first slot lets the second proceed.
	_ = first.Close()
	if err := roundTrip(second, 5*time.Second); err != nil {
		t.Fatalf("second connection after release: %v", err)
	}
	_ = second.Close()
}

// TestExpiredTokensSwept proves the amortised sweep: minting past the
// sweep threshold reclaims expired records without a background timer.
func TestExpiredTokensSwept(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	login, err := oasis.New("Login", clk, nil, oasis.Options{CertTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		t.Fatal(err)
	}
	gw := gateway.New(login, gateway.Options{Rand: &seqReader{}})
	h := gw.Handler()
	c := ids.NewHostAuthority("ely", clk.Now()).NewDomain()
	issue := func() {
		rec := post(t, h, "/v1/token", gateway.TokenRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{uid("u"), value.Object("Login.host", "ely")},
		}, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("issue: status %d", rec.Code)
		}
	}
	const dead = 512
	for i := 0; i < dead; i++ {
		issue()
	}
	clk.Advance(time.Hour) // everything so far is now expired
	before := gw.TokenCount()
	// Enough fresh mints to cross every shard's sweep threshold.
	for i := 0; i < 16*256; i++ {
		issue()
	}
	after := gw.TokenCount()
	if after >= before+16*256 {
		t.Fatalf("expired tokens never swept: %d -> %d", before, after)
	}
}
