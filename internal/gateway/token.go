package gateway

import (
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"

	"oasis/internal/cert"
)

// tokenRecord binds an opaque token id to the live role membership
// certificate it stands for. Validity is NOT stored here: every
// introspection asks the engine, whose credential-record store is the
// single source of truth — revocation cascades reach token holders
// with no per-token bookkeeping in the gateway.
type tokenRecord struct {
	cert   *cert.RMC
	issued time.Time
}

// tokenShards stripes the token table; the hot paths (issue inserts,
// introspect reads) then contend only per shard, matching the store's
// own striping discipline.
const tokenShards = 16

type tokenShard struct {
	mu     sync.RWMutex
	tokens map[string]*tokenRecord
	mints  int // inserts since the last expiry sweep of this shard
}

// tokenStore is the sharded opaque-id → record table.
type tokenStore struct {
	randMu sync.Mutex
	rand   io.Reader

	shards [tokenShards]tokenShard
}

// sweepEvery is the number of inserts per shard between amortised
// expiry sweeps, bounding dead-token memory without a background
// goroutine (the gateway has no timer of its own; deployments with a
// virtual clock would never fire one).
const sweepEvery = 256

func newTokenStore(r io.Reader) *tokenStore {
	ts := &tokenStore{rand: r}
	for i := range ts.shards {
		ts.shards[i].tokens = make(map[string]*tokenRecord)
	}
	return ts
}

// shardFor hashes the token id (FNV-1a over the id bytes) to a shard.
func (ts *tokenStore) shardFor(id string) *tokenShard {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &ts.shards[h%tokenShards]
}

// mint draws a fresh 128-bit opaque id, binds it to the certificate,
// and returns the id. Expiry rides on the certificate itself
// (cert.Expiry); the store only sweeps records whose expiry has
// passed.
func (ts *tokenStore) mint(c *cert.RMC, now time.Time) (string, error) {
	var raw [16]byte
	ts.randMu.Lock()
	_, err := io.ReadFull(ts.rand, raw[:])
	ts.randMu.Unlock()
	if err != nil {
		return "", fmt.Errorf("gateway: token entropy: %w", err)
	}
	id := hex.EncodeToString(raw[:])
	sh := ts.shardFor(id)
	sh.mu.Lock()
	sh.tokens[id] = &tokenRecord{cert: c, issued: now}
	sh.mints++
	if sh.mints >= sweepEvery {
		sh.mints = 0
		for k, rec := range sh.tokens {
			if !rec.cert.Expiry.IsZero() && now.After(rec.cert.Expiry) {
				delete(sh.tokens, k)
			}
		}
	}
	sh.mu.Unlock()
	return id, nil
}

// lookup resolves a token id; the bool reports existence.
func (ts *tokenStore) lookup(id string) (*tokenRecord, bool) {
	sh := ts.shardFor(id)
	sh.mu.RLock()
	rec, ok := sh.tokens[id]
	sh.mu.RUnlock()
	return rec, ok
}

// remove forgets a token id (after revocation, or when introspection
// finds it expired). Removing an absent id is a no-op — revocation is
// idempotent all the way down.
func (ts *tokenStore) remove(id string) {
	sh := ts.shardFor(id)
	sh.mu.Lock()
	delete(sh.tokens, id)
	sh.mu.Unlock()
}

// len counts live records across shards.
func (ts *tokenStore) len() int {
	n := 0
	for i := range ts.shards {
		sh := &ts.shards[i]
		sh.mu.RLock()
		n += len(sh.tokens)
		sh.mu.RUnlock()
	}
	return n
}
