package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// maxBodyBytes bounds one request body; the largest legitimate payload
// is a credential list, far below this.
const maxBodyBytes = 1 << 20

// TokenRequest asks for role entry as token issuance (POST /v1/token).
// Creds carry role membership certificates previously issued by this
// or peer services; Delegation selects entry by election (§4.4).
type TokenRequest struct {
	Client     ids.ClientID     `json:"client"`
	Rolefile   string           `json:"rolefile,omitempty"`
	Role       string           `json:"role"`
	Args       []value.Value    `json:"args,omitempty"`
	Creds      []*cert.RMC      `json:"creds,omitempty"`
	Delegation *cert.Delegation `json:"delegation,omitempty"`
}

// TokenResponse is the issued token. ExpiresIn is derived from the
// RMC's own expiry (0 = the certificate does not expire); Cert is the
// underlying certificate so native-protocol peers can interoperate.
type TokenResponse struct {
	Token     string        `json:"access_token"`
	TokenType string        `json:"token_type"`
	ExpiresIn int64         `json:"expires_in,omitempty"`
	Issuer    string        `json:"issuer"`
	Rolefile  string        `json:"rolefile"`
	Roles     []string      `json:"roles"`
	Args      []value.Value `json:"args,omitempty"`
	Cert      *cert.RMC     `json:"cert,omitempty"`
}

// tokenType names the scheme in token responses.
const tokenType = "oasis"

// IntrospectRequest asks for the live status of a token
// (POST /v1/introspect).
type IntrospectRequest struct {
	Token string `json:"token"`
}

// IntrospectResponse reports a token's live status (RFC 7662 shape).
// Everything beyond Active is omitted for inactive tokens, so callers
// learn nothing about tokens they merely guess at.
type IntrospectResponse struct {
	Active   bool          `json:"active"`
	Issuer   string        `json:"issuer,omitempty"`
	Rolefile string        `json:"rolefile,omitempty"`
	Roles    []string      `json:"roles,omitempty"`
	Args     []value.Value `json:"args,omitempty"`
	Client   string        `json:"client,omitempty"`
	Exp      int64         `json:"exp,omitempty"`
	Iat      int64         `json:"iat,omitempty"`
}

// RevokeRequest revokes by one of three routes (POST /v1/revoke):
//   - Token: the token's own membership is revoked (RevokeDirect);
//   - Revocation: a signed revocation certificate kills a delegation
//     (Service.Revoke, §4.4);
//   - RevokerToken + Role (+ Args): role-based revocation — the caller
//     holds the revoker role and names the instance (RevokeByRole,
//     §4.11).
type RevokeRequest struct {
	Token        string           `json:"token,omitempty"`
	Revocation   *cert.Revocation `json:"revocation,omitempty"`
	RevokerToken string           `json:"revoker_token,omitempty"`
	Rolefile     string           `json:"rolefile,omitempty"`
	Role         string           `json:"role,omitempty"`
	Args         []value.Value    `json:"args,omitempty"`
}

// RevokeResponse acknowledges a revocation. Per RFC 7009 the endpoint
// is idempotent: revoking an already-revoked or unknown token is OK.
type RevokeResponse struct {
	OK bool `json:"ok"`
}

// ErrorResponse is the error envelope (OAuth shape).
type ErrorResponse struct {
	Err  string `json:"error"`
	Desc string `json:"error_description,omitempty"`
}

// droppedResponseWrites counts response bodies the client went away
// before receiving — the only way a ResponseWriter.Write error can be
// "handled" is to account for it.
var droppedResponseWrites atomic.Uint64

// DroppedResponseWrites reports responses lost to departed clients.
func DroppedResponseWrites() uint64 { return droppedResponseWrites.Load() }

// writeJSON encodes v, then writes status and body. Encoding first
// means an encode failure can still become a 500 instead of a torn
// 200; a body-write failure means the client is gone, which is counted
// rather than ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":"server_error"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		droppedResponseWrites.Add(1)
	}
}

func writeError(w http.ResponseWriter, status int, code, desc string) {
	writeJSON(w, status, ErrorResponse{Err: code, Desc: desc})
}

// retryAfter sets the Retry-After header, rounded up to whole seconds
// (the header's granularity).
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// decode reads one bounded JSON body into v.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("malformed request body: %w", err)
	}
	return nil
}

// engineError maps an engine failure onto the HTTP error vocabulary:
// fraud is refused outright, everything else is an invalid grant.
func engineError(w http.ResponseWriter, err error) {
	var verr *oasis.ValidationError
	if errors.As(err, &verr) {
		switch verr.Class {
		case oasis.Fraud:
			writeError(w, http.StatusForbidden, "access_denied", verr.Reason)
			return
		case oasis.Revoked, oasis.Erroneous:
			writeError(w, http.StatusBadRequest, "invalid_grant", verr.Reason)
			return
		}
	}
	writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
}

// handleToken performs role entry and mints an opaque token bound to
// the issued certificate.
func (g *Gateway) handleToken(w http.ResponseWriter, r *http.Request) {
	var req TokenRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	if req.Role == "" {
		writeError(w, http.StatusBadRequest, "invalid_request", "role is required")
		return
	}
	if req.Client.IsZero() {
		writeError(w, http.StatusBadRequest, "invalid_request", "client identity is required")
		return
	}
	rmc, err := g.svc.Enter(oasis.EnterRequest{
		Client:     req.Client,
		Rolefile:   req.Rolefile,
		Role:       req.Role,
		Args:       req.Args,
		Creds:      req.Creds,
		Delegation: req.Delegation,
	})
	if err != nil {
		engineError(w, err)
		return
	}
	now := g.clk.Now()
	id, err := g.tokens.mint(rmc, now)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "server_error", err.Error())
		return
	}
	res := TokenResponse{
		Token:     id,
		TokenType: tokenType,
		Issuer:    g.svc.Name(),
		Rolefile:  rmc.Rolefile,
		Roles:     g.svc.RoleNames(rmc),
		Args:      rmc.Args,
		Cert:      rmc,
	}
	if !rmc.Expiry.IsZero() {
		res.ExpiresIn = int64(rmc.Expiry.Sub(now) / time.Second)
	}
	writeJSON(w, http.StatusOK, res)
}

// handleIntrospect answers a token's status live from the credential
// record store: a revocation cascade that lands between two
// introspections flips the answer with no gateway-side invalidation.
func (g *Gateway) handleIntrospect(w http.ResponseWriter, r *http.Request) {
	var req IntrospectRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	if req.Token == "" {
		writeError(w, http.StatusBadRequest, "invalid_request", "token is required")
		return
	}
	rec, ok := g.tokens.lookup(req.Token)
	if !ok {
		writeJSON(w, http.StatusOK, IntrospectResponse{Active: false})
		return
	}
	c := rec.cert
	if !c.Expiry.IsZero() && g.clk.Now().After(c.Expiry) {
		// Expired: the engine would refuse it too; drop our record so
		// the table does not accrete dead tokens.
		g.tokens.remove(req.Token)
		writeJSON(w, http.StatusOK, IntrospectResponse{Active: false})
		return
	}
	if err := g.svc.Validate(c, c.Client); err != nil {
		writeJSON(w, http.StatusOK, IntrospectResponse{Active: false})
		return
	}
	res := IntrospectResponse{
		Active:   true,
		Issuer:   g.svc.Name(),
		Rolefile: c.Rolefile,
		Roles:    g.svc.RoleNames(c),
		Args:     c.Args,
		Client:   c.Client.String(),
		Iat:      rec.issued.Unix(),
	}
	if !c.Expiry.IsZero() {
		res.Exp = c.Expiry.Unix()
	}
	writeJSON(w, http.StatusOK, res)
}

// handleRevoke routes a revocation through the engine. RFC 7009
// semantics: unknown and already-revoked tokens acknowledge with 200 —
// the caller's goal (the token is dead) already holds.
func (g *Gateway) handleRevoke(w http.ResponseWriter, r *http.Request) {
	var req RevokeRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	switch {
	case req.Revocation != nil:
		g.revokeByCertificate(w, req.Revocation)
	case req.RevokerToken != "":
		g.revokeByRole(w, req)
	case req.Token != "":
		g.revokeToken(w, req.Token)
	default:
		writeError(w, http.StatusBadRequest, "invalid_request",
			"one of token, revocation, revoker_token is required")
	}
}

// revokeToken invalidates the membership behind a token.
func (g *Gateway) revokeToken(w http.ResponseWriter, token string) {
	rec, ok := g.tokens.lookup(token)
	if !ok {
		writeJSON(w, http.StatusOK, RevokeResponse{OK: true})
		return
	}
	if alreadyDead(g.svc.Store(), rec.cert.CRR) {
		g.tokens.remove(token)
		writeJSON(w, http.StatusOK, RevokeResponse{OK: true})
		return
	}
	if err := g.svc.RevokeDirect(rec.cert); err != nil {
		engineError(w, err)
		return
	}
	g.tokens.remove(token)
	writeJSON(w, http.StatusOK, RevokeResponse{OK: true})
}

// revokeByCertificate honours a signed revocation certificate (§4.4).
func (g *Gateway) revokeByCertificate(w http.ResponseWriter, rev *cert.Revocation) {
	if alreadyDead(g.svc.Store(), rev.TargetCRR) {
		writeJSON(w, http.StatusOK, RevokeResponse{OK: true})
		return
	}
	if err := g.svc.Revoke(rev); err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RevokeResponse{OK: true})
}

// revokeByRole performs role-based revocation: the revoker's token
// stands in for their certificate.
func (g *Gateway) revokeByRole(w http.ResponseWriter, req RevokeRequest) {
	rec, ok := g.tokens.lookup(req.RevokerToken)
	if !ok {
		writeError(w, http.StatusForbidden, "access_denied", "unknown revoker token")
		return
	}
	if req.Role == "" {
		writeError(w, http.StatusBadRequest, "invalid_request", "role is required")
		return
	}
	err := g.svc.RevokeByRole(rec.cert, rec.cert.Client, req.Rolefile, req.Role, req.Args)
	if err != nil {
		var verr *oasis.ValidationError
		// Idempotency: the named instance being gone already means the
		// caller's goal holds. A permissions failure still refuses.
		if errors.As(err, &verr) && verr.Class == oasis.Erroneous &&
			g.svc.InstanceRevoked(req.Rolefile, req.Role, req.Args) {
			writeJSON(w, http.StatusOK, RevokeResponse{OK: true})
			return
		}
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RevokeResponse{OK: true})
}

// alreadyDead reports a credential record that is deleted or
// permanently false — i.e. revocation already happened and may even
// have been swept.
func alreadyDead(store credrec.Recorder, ref credrec.Ref) bool {
	st, perm, err := store.Resolve(ref)
	return err != nil || (st == credrec.False && perm)
}
