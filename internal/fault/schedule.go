package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSchedule parses the textual fault-schedule format used by
// cmd/oasisd's -fault-schedule flag and the chaos suite fixtures.
//
// One directive per line; '#' starts a comment; blank lines are
// ignored. Durations use Go syntax (50ms, 2s, 1m).
//
//	at <offset> faults <a> <b> [drop=<p>] [dup=<p>] [delay=<dur>] [jitter=<dur>]
//	at <offset> sever <a> <b>
//	at <offset> restore <a> <b>
//	at <offset> split <name> <a,b,...> <c,d,...>
//	at <offset> heal <name>
//
// A faults directive with no options clears the link's fault profile.
func ParseSchedule(src string) ([]Step, error) {
	var steps []Step
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		step, err := parseStep(fields)
		if err != nil {
			return nil, fmt.Errorf("fault: schedule line %d: %w", lineno+1, err)
		}
		steps = append(steps, step)
	}
	return steps, nil
}

func parseStep(fields []string) (Step, error) {
	if len(fields) < 3 || fields[0] != "at" {
		return Step{}, fmt.Errorf("want 'at <offset> <verb> ...', got %q", strings.Join(fields, " "))
	}
	at, err := time.ParseDuration(fields[1])
	if err != nil {
		return Step{}, fmt.Errorf("bad offset %q: %v", fields[1], err)
	}
	if at < 0 {
		return Step{}, fmt.Errorf("negative offset %q", fields[1])
	}
	s := Step{At: at, Kind: fields[2]}
	rest := fields[3:]
	switch s.Kind {
	case "faults":
		if len(rest) < 2 {
			return Step{}, fmt.Errorf("faults needs two peer names")
		}
		s.A, s.B = rest[0], rest[1]
		for _, opt := range rest[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return Step{}, fmt.Errorf("bad option %q (want key=value)", opt)
			}
			switch k {
			case "drop", "dup":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || p < 0 || p > 1 {
					return Step{}, fmt.Errorf("bad probability %q", opt)
				}
				if k == "drop" {
					s.Faults.Drop = p
				} else {
					s.Faults.Dup = p
				}
			case "delay", "jitter":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return Step{}, fmt.Errorf("bad duration %q", opt)
				}
				if k == "delay" {
					s.Faults.Delay = d
				} else {
					s.Faults.Jitter = d
				}
			default:
				return Step{}, fmt.Errorf("unknown faults option %q", k)
			}
		}
	case "sever", "restore":
		if len(rest) != 2 {
			return Step{}, fmt.Errorf("%s needs two peer names", s.Kind)
		}
		s.A, s.B = rest[0], rest[1]
	case "split":
		if len(rest) != 3 {
			return Step{}, fmt.Errorf("split needs <name> <side1> <side2>")
		}
		s.Name = rest[0]
		s.Side1 = splitNames(rest[1])
		s.Side2 = splitNames(rest[2])
		if len(s.Side1) == 0 || len(s.Side2) == 0 {
			return Step{}, fmt.Errorf("split sides must be non-empty")
		}
	case "heal":
		if len(rest) != 1 {
			return Step{}, fmt.Errorf("heal needs a partition name")
		}
		s.Name = rest[0]
	default:
		return Step{}, fmt.Errorf("unknown verb %q", s.Kind)
	}
	return s, nil
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}
