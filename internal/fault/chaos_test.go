package fault

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/mssa"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// The chaos suite drives whole OASIS deployments through seeded fault
// schedules and asserts the two §4.10 obligations:
//
//   - safety: once a certificate's backing credential is revoked — or
//     once the fail-safe budget for an unreachable source has run out —
//     no validation of it succeeds anywhere, even mid-partition;
//   - liveness: after the fault heals, surviving memberships are
//     restored within a bounded number of heartbeats, and the watcher's
//     store converges to the same image a fault-free run produces.
//
// Every run is a pure function of (seed, schedule): the clock is
// virtual, the only randomness is the plane's per-link streams, and the
// driver is single-threaded — so each scenario can simply be run twice
// and compared transcript for transcript.

const (
	hbPeriod   = 5 * time.Second
	missedHB   = 2 // fail-safe after 2 heartbeat periods of silence
	tickSlices = 1 // drive resolution: 1s
)

// chaosOpts is the watcher-side configuration every scenario uses.
func chaosOpts() oasis.Options {
	return oasis.Options{
		HeartbeatEvery: hbPeriod,
		FailsafeMissed: missedHB,
		AutoResync:     true,
	}
}

// world is a two-service deployment (Login issuing, Conf watching)
// under a fault plane.
type world struct {
	t     *testing.T
	clk   *clock.Virtual
	net   *bus.Network
	plane *Plane
	login *oasis.Service
	conf  *oasis.Service
	hosts map[string]*ids.HostAuthority
}

const chaosLoginRolefile = `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`

const chaosConfRolefile = `
Member(u) <- Login.LoggedOn(u, h)*
`

func newWorld(t *testing.T, seed int64) *world {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	plane := New(clk, seed)
	plane.Install(net)
	login, err := oasis.New("Login", clk, net, oasis.Options{HeartbeatEvery: hbPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", chaosLoginRolefile); err != nil {
		t.Fatal(err)
	}
	conf, err := oasis.New("Conf", clk, net, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := conf.AddRolefile("main", chaosConfRolefile); err != nil {
		t.Fatal(err)
	}
	return &world{t: t, clk: clk, net: net, plane: plane,
		login: login, conf: conf, hosts: make(map[string]*ids.HostAuthority)}
}

func (w *world) user(host, user string) (ids.ClientID, *cert.RMC) {
	w.t.Helper()
	ha, ok := w.hosts[host]
	if !ok {
		ha = ids.NewHostAuthority(host, w.clk.Now())
		w.hosts[host] = ha
	}
	c := ha.NewDomain()
	rmc, err := w.login.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", user),
			value.Object("Login.host", host),
		},
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return c, rmc
}

func (w *world) member(c ids.ClientID, login *cert.RMC, user string) *cert.RMC {
	w.t.Helper()
	m, err := w.conf.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Args:  []value.Value{value.Object("Login.userid", user)},
		Creds: []*cert.RMC{login},
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return m
}

// drive advances the world one virtual second at a time: clock, due
// schedule steps, queued deliveries, and — on heartbeat boundaries —
// the issuer's heartbeat fan-out and the watcher's suspicion machine.
// hooks run after the boundary work of their second; each runs last.
func (w *world) drive(seconds int, hooks map[int]func(), each func(i int)) {
	for i := 1; i <= seconds; i++ {
		w.clk.Advance(time.Second)
		w.plane.Tick()
		w.net.Flush()
		if i%int(hbPeriod/time.Second) == 0 {
			w.login.HeartbeatTick()
			w.net.Flush()
			w.conf.SuspicionTick()
		}
		if h := hooks[i]; h != nil {
			h()
		}
		if each != nil {
			each(i)
		}
	}
}

// partitionHealRun is one full acceptance scenario: a flaky WAN link
// (duplication + jitter) splits at t=30s and heals at t=60s; bob's
// login is revoked mid-partition. It returns the plane transcript, the
// per-second validation log and the watcher's final store image.
func partitionHealRun(t *testing.T, seed int64, partitioned bool) (string, []string, []byte) {
	t.Helper()
	w := newWorld(t, seed)
	aliceC, aliceLogin := w.user("ely", "alice")
	aliceM := w.member(aliceC, aliceLogin, "alice")
	bobC, bobLogin := w.user("cam", "bob")
	bobM := w.member(bobC, bobLogin, "bob")

	w.plane.SetFaults("Login", "Conf", Faults{Dup: 0.2, Jitter: 300 * time.Millisecond})
	if partitioned {
		w.plane.SetSchedule([]Step{
			{At: 30 * time.Second, Kind: "split", Name: "wan", Side1: []string{"Login"}, Side2: []string{"Conf"}},
			{At: 60 * time.Second, Kind: "heal", Name: "wan"},
		})
	}

	var log []string
	hooks := map[int]func(){
		40: func() {
			if err := w.login.Exit(bobLogin, bobC); err != nil {
				t.Fatal(err)
			}
		},
	}
	w.drive(120, hooks, func(i int) {
		aliceOK := w.conf.Validate(aliceM, aliceC) == nil
		bobOK := w.conf.Validate(bobM, bobC) == nil
		bobAtSource := w.login.Validate(bobLogin, bobC) == nil
		log = append(log, fmt.Sprintf("t=%d alice=%t bob=%t bobAtSource=%t", i, aliceOK, bobOK, bobAtSource))

		// Safety at the issuer: the revocation is effective there the
		// instant it happens, partition or not.
		if i >= 40 && bobAtSource {
			t.Fatalf("t=%d: revoked login still validates at the issuer", i)
		}
		if !partitioned {
			return
		}
		// Safety at the watcher: bob must never validate again once the
		// fail-safe budget after the revocation has elapsed — the
		// partition hides the revocation, so the budget is what bounds
		// the exposure (§6.8.4).
		if i >= 40+missedHB*int(hbPeriod/time.Second) && bobOK {
			t.Fatalf("t=%d: revoked membership validated mid-partition", i)
		}
		// Fail-safe stance mid-partition: with Login unreachable past
		// the budget, even alice's (really still valid) membership must
		// be refused.
		if i >= 30+missedHB*int(hbPeriod/time.Second) && i < 60 && aliceOK {
			t.Fatalf("t=%d: validation succeeded against an unreachable source", i)
		}
		// Liveness: within 3 heartbeats of the heal, alice is back.
		if i >= 60+3*int(hbPeriod/time.Second) && !aliceOK {
			t.Fatalf("t=%d: surviving membership not restored after heal", i)
		}
	})
	return w.plane.Transcript(), log, w.conf.Store().Image()
}

func TestChaosPartitionHealLoginConf(t *testing.T) {
	const seed = 42
	tr1, log1, img1 := partitionHealRun(t, seed, true)

	// Determinism: the same seed reproduces the chaos run bit for bit —
	// fault transcript, validation outcomes, and final store.
	tr2, log2, img2 := partitionHealRun(t, seed, true)
	if tr1 != tr2 {
		t.Fatalf("same seed, different transcripts:\n--- run1 ---\n%s\n--- run2 ---\n%s", tr1, tr2)
	}
	if len(log1) != len(log2) {
		t.Fatalf("log lengths differ: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("validation logs diverge at %d: %q vs %q", i, log1[i], log2[i])
		}
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("same seed, different final stores")
	}

	// A different seed draws different faults.
	tr3, _, _ := partitionHealRun(t, seed+1, true)
	if tr1 == tr3 {
		t.Fatal("different seeds produced identical transcripts")
	}

	// Convergence: the post-heal store equals the store of a run where
	// the partition never happened — the resync left no trace beyond
	// the revocation it recovered.
	_, _, ref := partitionHealRun(t, seed, false)
	if !bytes.Equal(img1, ref) {
		t.Fatalf("post-heal store diverges from fault-free run:\n-- chaos --\n%s\n-- reference --\n%s", img1, ref)
	}
}

// TestChaosLossyGolfClub runs the §3.4.5 golf club on a lossy link:
// jack joins by quorum (a recommendation from arnold, election by
// gary); then 35%% of Login->Golf notifications drop. Losing the
// logout notification must not let jack keep playing: gap detection
// and the fail-safe budget bound the exposure, and the surviving
// founders get their memberships back once the link is clean.
func TestChaosLossyGolfClub(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	plane := New(clk, 7)
	plane.Install(net)
	login, err := oasis.New("Login", clk, net, oasis.Options{HeartbeatEvery: hbPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", chaosLoginRolefile); err != nil {
		t.Fatal(err)
	}
	golf, err := oasis.New("Golf", clk, net, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := golf.AddRolefile("main", `
def Member(p) p: Login.userid
Member(p)  <- Login.LoggedOn(p, h) : p in founders
Rec(p, m1) <- Login.LoggedOn(p, h)* <| Member(m1)
Member(p)  <- Rec(p, m1)* <| Member(m2) : m1 != m2
`); err != nil {
		t.Fatal(err)
	}
	golf.Groups().AddMember("arnold", "founders")
	golf.Groups().AddMember("gary", "founders")

	hosts := ids.NewHostAuthority("club", clk.Now())
	uid := func(u string) value.Value { return value.Object("Login.userid", u) }
	logOn := func(user string) (ids.ClientID, *cert.RMC) {
		c := hosts.NewDomain()
		rmc, err := login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{uid(user), value.Object("Login.host", "club")},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, rmc
	}
	arnoldC, arnoldLogin := logOn("arnold")
	arnold, err := golf.Enter(oasis.EnterRequest{Client: arnoldC, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("arnold")}, Creds: []*cert.RMC{arnoldLogin}})
	if err != nil {
		t.Fatal(err)
	}
	garyC, garyLogin := logOn("gary")
	gary, err := golf.Enter(oasis.EnterRequest{Client: garyC, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("gary")}, Creds: []*cert.RMC{garyLogin}})
	if err != nil {
		t.Fatal(err)
	}

	// jack's quorum join: recommended by arnold, elected by gary.
	jackC, jackLogin := logOn("jack")
	d1, _, err := golf.Delegate(oasis.DelegateRequest{
		Client: arnoldC, Rolefile: "main", Role: "Rec",
		Args: []value.Value{uid("jack"), uid("arnold")}, ElectorCert: arnold,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := golf.EnterDelegated(oasis.EnterRequest{
		Client: jackC, Rolefile: "main", Role: "Rec",
		Creds: []*cert.RMC{jackLogin}, Delegation: d1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := golf.Delegate(oasis.DelegateRequest{
		Client: garyC, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("jack")}, ElectorCert: gary,
	})
	if err != nil {
		t.Fatal(err)
	}
	jack, err := golf.EnterDelegated(oasis.EnterRequest{
		Client: jackC, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{rec}, Delegation: d2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := golf.Validate(jack, jackC); err != nil {
		t.Fatalf("quorum membership invalid before chaos: %v", err)
	}

	plane.SetSchedule([]Step{
		{At: 10 * time.Second, Kind: "faults", A: "Login", B: "Golf", Faults: Faults{Drop: 0.35}},
		{At: 150 * time.Second, Kind: "faults", A: "Login", B: "Golf"}, // link clean again
	})

	hbTicks := int(hbPeriod / time.Second)
	for i := 1; i <= 180; i++ {
		clk.Advance(time.Second)
		plane.Tick()
		net.Flush()
		if i%hbTicks == 0 {
			login.HeartbeatTick()
			net.Flush()
			golf.SuspicionTick()
		}
		if i == 50 {
			// jack logs off; the notification races a 35% drop rate.
			if err := login.Exit(jackLogin, jackC); err != nil {
				t.Fatal(err)
			}
		}
		// Safety: after the fail-safe budget, jack's membership — and
		// the Rec credential under it — must never validate again.
		if i >= 50+missedHB*hbTicks {
			if golf.Validate(jack, jackC) == nil {
				t.Fatalf("t=%d: revoked quorum membership validated on lossy link", i)
			}
			if golf.Validate(rec, jackC) == nil {
				t.Fatalf("t=%d: recommendation outlived the revoked login", i)
			}
		}
	}
	// Liveness: with the link clean, the founders' memberships are live.
	if err := golf.Validate(gary, garyC); err != nil {
		t.Fatalf("gary not restored after loss cleared: %v", err)
	}
	if err := golf.Validate(arnold, arnoldC); err != nil {
		t.Fatalf("arnold not restored after loss cleared: %v", err)
	}
	if drops := plane.Drops(); drops == 0 {
		t.Fatal("lossy scenario dropped nothing — chaos not engaged")
	}
}

// TestChaosMSSAPartition partitions an MSSA custode from the Login
// service: a user who logged out during the partition must not regain
// file access after the heal, while a user who stayed logged on must.
func TestChaosMSSAPartition(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	plane := New(clk, 11)
	plane.Install(net)
	login, err := oasis.New("Login", clk, net, oasis.Options{HeartbeatEvery: hbPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", chaosLoginRolefile); err != nil {
		t.Fatal(err)
	}
	fc, err := mssa.NewCustodeWith("FFC", clk, net, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	acl, err := fc.CreateACL(mssa.MustParseACL("rjh21=rw guest=r"), mssa.FileID{})
	if err != nil {
		t.Fatal(err)
	}
	fileID, err := fc.Create([]byte("minutes"), acl)
	if err != nil {
		t.Fatal(err)
	}

	hosts := ids.NewHostAuthority("wolfson", clk.Now())
	logOn := func(user string) (ids.ClientID, *cert.RMC) {
		c := hosts.NewDomain()
		rmc, err := login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{
				value.Object("Login.userid", user),
				value.Object("Login.host", "wolfson"),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, rmc
	}
	ownerC, ownerLogin := logOn("rjh21")
	ownerUse, err := fc.EnterUseAcl(ownerC, ownerLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	guestC, guestLogin := logOn("guest")
	guestUse, err := fc.EnterUseAcl(guestC, guestLogin, acl)
	if err != nil {
		t.Fatal(err)
	}

	plane.SetSchedule([]Step{
		{At: 30 * time.Second, Kind: "sever", A: "Login", B: "FFC"},
		{At: 60 * time.Second, Kind: "restore", A: "Login", B: "FFC"},
	})

	hbTicks := int(hbPeriod / time.Second)
	for i := 1; i <= 90; i++ {
		clk.Advance(time.Second)
		plane.Tick()
		net.Flush()
		if i%hbTicks == 0 {
			login.HeartbeatTick()
			net.Flush()
			fc.Service().SuspicionTick()
		}
		if i == 40 {
			// The owner logs out while the custode cannot hear about it.
			if err := login.Exit(ownerLogin, ownerC); err != nil {
				t.Fatal(err)
			}
		}
		ownerOK := func() bool { _, err := fc.Read(ownerC, fileID, ownerUse); return err == nil }()
		guestOK := func() bool { _, err := fc.Read(guestC, fileID, guestUse); return err == nil }()
		// Safety: past the fail-safe budget no partitioned access works,
		// and the logged-out owner never reads again.
		// (The heal step and the reviving heartbeat both land on t=60,
		// so the partition window ends at t=59.)
		if i >= 30+missedHB*hbTicks && i < 60 && (ownerOK || guestOK) {
			t.Fatalf("t=%d: file access during partition past fail-safe budget (owner=%t guest=%t)", i, ownerOK, guestOK)
		}
		if i >= 40+missedHB*hbTicks && ownerOK {
			t.Fatalf("t=%d: logged-out owner read a file", i)
		}
		// Liveness: the guest is reading again within 3 heartbeats of
		// the heal.
		if i >= 60+3*hbTicks && !guestOK {
			t.Fatalf("t=%d: guest access not restored after heal", i)
		}
	}
}
