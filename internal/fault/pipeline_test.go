package fault

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/event"
)

// echoRecorder counts how many times each argument is executed, so the
// test can prove the pre-send-only retry rule: a call that reached the
// server is never re-sent, hence never re-executed.
type echoRecorder struct {
	mu    sync.Mutex
	execs map[string]int
}

func (r *echoRecorder) Call(from, op string, arg any) (any, error) {
	s, _ := arg.(string)
	r.mu.Lock()
	if r.execs == nil {
		r.execs = make(map[string]int)
	}
	r.execs[s]++
	r.mu.Unlock()
	return arg, nil
}

func (r *echoRecorder) Deliver(event.Notification) {}

// TestPipelinedCallsUnderFaults hammers one pipelined TCP link with
// concurrent calls while the fault plane drops and delays notifications
// on the same link and repeatedly severs/restores it. Invariants:
//
//   - every successful call's reply is its own argument (the pipelined
//     writer and the seq/waiter table never cross-wire replies);
//   - the server executes each unique argument at most once (retries
//     are pre-send-only, so a sent call is never re-executed);
//   - once the link is restored, calls succeed again.
func TestPipelinedCallsUnderFaults(t *testing.T) {
	serverNet := bus.NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	rec := &echoRecorder{}
	if err := serverNet.Register("svc", rec); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback listener available:", err)
	}
	defer ln.Close()
	go func() { _ = serverNet.ServeTCP(ln) }()

	clk := clock.NewVirtual(time.Unix(0, 0))
	clientNet := bus.NewNetwork(clk)
	clientNet.SetCallRetry(3, 0)
	if err := clientNet.Register("caller", &sink{}); err != nil {
		t.Fatal(err)
	}
	if err := clientNet.AddRemote("svc", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer clientNet.CloseRemotes()
	if f := clientNet.RemoteWireFormat("svc"); f != bus.WireBinary {
		t.Fatalf("link speaks %q, want the pipelined binary path", f)
	}

	plane := New(clk, 1234)
	plane.Install(clientNet)
	plane.SetFaults("caller", "svc", Faults{Drop: 0.3, Jitter: 20 * time.Millisecond})

	const workers = 8
	const callsPerWorker = 200

	var wg sync.WaitGroup
	stopChurn := make(chan struct{})

	// Churn: sever and restore the link while traffic is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				plane.Restore("caller", "svc")
				return
			default:
			}
			if i%2 == 0 {
				plane.Sever("caller", "svc")
			} else {
				plane.Restore("caller", "svc")
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Notification spam shares the pipelined writer with the calls and
	// takes the policy's drop/delay verdicts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < workers*callsPerWorker/4; i++ {
			clientNet.Send("caller", "svc", event.Notification{Source: "caller", Seq: uint64(i)})
		}
	}()

	errs := make([]error, workers)
	var ok sync.Map // arg → true for calls that returned successfully
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsPerWorker; i++ {
				arg := fmt.Sprintf("g%d-%d", w, i)
				got, err := clientNet.Call("caller", "svc", "echo", arg)
				if err != nil {
					// Severed window: pre-send failure. Pace the loop so a
					// worker cannot burn its whole workload inside one
					// severed window before the churn ever restores the
					// link (the arg is not re-issued — a sent call may
					// have executed, and re-sending would fake a retry).
					time.Sleep(200 * time.Microsecond)
					continue
				}
				if got != arg {
					errs[w] = fmt.Errorf("reply cross-wired: sent %q, got %v", arg, got)
					return
				}
				ok.Store(arg, true)
			}
		}(w)
	}

	// Stop the churn once the workers drain, then wait for everyone.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.After(30 * time.Second)
	for finished := false; !finished; {
		select {
		case <-done:
			finished = true
		case <-time.After(5 * time.Millisecond):
			select {
			case <-stopChurn:
			default:
				// Keep the churn running only while calls are in flight;
				// close after a while so severed windows cannot starve
				// the workers forever.
				close(stopChurn)
			}
		case <-deadline:
			t.Fatal("test wedged: workers did not finish")
		}
	}

	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	rec.mu.Lock()
	succeeded := 0
	ok.Range(func(any, any) bool { succeeded++; return true })
	for arg, n := range rec.execs {
		if n > 1 {
			rec.mu.Unlock()
			t.Fatalf("call %q executed %d times: a sent call was retried", arg, n)
		}
	}
	executed := len(rec.execs)
	rec.mu.Unlock()
	if succeeded == 0 {
		t.Fatal("no call succeeded; churn never let traffic through")
	}
	if executed < succeeded {
		t.Fatalf("%d calls succeeded but only %d executed", succeeded, executed)
	}

	// The plane ends restored: the link must work again.
	if got, err := clientNet.Call("caller", "svc", "echo", "after-restore"); err != nil || got != "after-restore" {
		t.Fatalf("call after restore = %v, %v", got, err)
	}
}
