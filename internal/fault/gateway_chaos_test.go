package fault

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"oasis/internal/cert"
	"oasis/internal/gateway"
	"oasis/internal/value"
)

// gwPost sends one JSON request into the gateway handler.
func gwPost(t *testing.T, h http.Handler, path string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: undecodable response %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// TestChaosGatewayPartition proves the federation gateway inherits the
// engine's fail-safe stance instead of caching its own: a token issued
// over HTTP before a partition introspects inactive once the watcher's
// fail-safe budget for the unreachable issuer runs out, and heals back
// to active after resync — all without the gateway being told anything.
func TestChaosGatewayPartition(t *testing.T) {
	w := newWorld(t, 11)
	gw := gateway.New(w.conf, gateway.Options{})
	h := gw.Handler()

	aliceC, aliceLogin := w.user("ely", "alice")
	var issued gateway.TokenResponse
	if code := gwPost(t, h, "/v1/token", gateway.TokenRequest{
		Client: aliceC, Rolefile: "main", Role: "Member",
		Args:  []value.Value{value.Object("Login.userid", "alice")},
		Creds: []*cert.RMC{aliceLogin},
	}, &issued); code != http.StatusOK {
		t.Fatalf("issue over HTTP: status %d", code)
	}

	active := func() bool {
		var in gateway.IntrospectResponse
		if code := gwPost(t, h, "/v1/introspect", gateway.IntrospectRequest{Token: issued.Token}, &in); code != http.StatusOK {
			t.Fatalf("introspect: status %d", code)
		}
		return in.Active
	}
	if !active() {
		t.Fatal("fresh token inactive")
	}

	w.plane.SetSchedule([]Step{
		{At: 30 * time.Second, Kind: "split", Name: "wan", Side1: []string{"Login"}, Side2: []string{"Conf"}},
		{At: 60 * time.Second, Kind: "heal", Name: "wan"},
	})

	budget := missedHB * int(hbPeriod/time.Second)
	var healedAt int
	w.drive(120, nil, func(i int) {
		switch {
		case i < 30:
			if !active() {
				t.Fatalf("t=%d: token inactive before the partition", i)
			}
		case i >= 30+budget+int(hbPeriod/time.Second) && i < 60:
			// Past the fail-safe budget (plus one period of slack for
			// the suspicion tick to land) the issuer is presumed
			// failed: the honest answer over HTTP is inactive, even
			// though alice's login was never revoked.
			if active() {
				t.Fatalf("t=%d: token still active mid-partition past the fail-safe budget", i)
			}
		case i > 60:
			if healedAt == 0 && active() {
				healedAt = i
			}
		}
	})
	if healedAt == 0 {
		t.Fatal("token never introspected active again after the heal")
	}
	if healedAt > 60+3*int(hbPeriod/time.Second) {
		t.Fatalf("resync too slow: token active again only at t=%d", healedAt)
	}
	if !active() {
		t.Fatal("token inactive at the end of the healed run")
	}
}
