package fault

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/credrec"
	"oasis/internal/oasis"
)

// Sharded-cluster chaos: four shard daemons joined in one ring, with
// cross-shard surrogates kept coherent by tree dissemination
// (oasis.JoinShardRing). The scenario partitions an interior tree edge
// mid-revocation-storm and asserts the same two obligations as the
// two-service suite: the starved subtree fails safe within the budget,
// and after the heal every shard's store converges to the image of a
// run where the partition never happened.

// shardWorld is a 4-member shard cluster under a fault plane. With
// sorted members [A B C D] and fanout 2, the tree rooted at shardA is
// A -> {B, C}, B -> {D}: severing B--D starves exactly shardD.
type shardWorld struct {
	t     *testing.T
	clk   *clock.Virtual
	net   *bus.Network
	plane *Plane
	names []string
	svcs  map[string]*oasis.Service
}

func newShardWorld(t *testing.T, seed int64) *shardWorld {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	plane := New(clk, seed)
	plane.Install(net)
	names := []string{"shardA", "shardB", "shardC", "shardD"}
	w := &shardWorld{t: t, clk: clk, net: net, plane: plane, names: names,
		svcs: make(map[string]*oasis.Service)}
	for _, n := range names {
		svc, err := oasis.New(n, clk, net, chaosOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.JoinShardRing(names, 2); err != nil {
			t.Fatal(err)
		}
		w.svcs[n] = svc
	}
	return w
}

// drive advances the cluster one virtual second at a time; on heartbeat
// boundaries every member heartbeats its own dissemination tree (in
// member order — the driver is single-threaded, so runs reproduce).
func (w *shardWorld) drive(seconds int, hooks map[int]func(), each func(i int)) {
	hbTicks := int(hbPeriod / time.Second)
	for i := 1; i <= seconds; i++ {
		w.clk.Advance(time.Second)
		w.plane.Tick()
		w.net.Flush()
		if i%hbTicks == 0 {
			for _, n := range w.names {
				w.svcs[n].HeartbeatTick()
			}
			w.net.Flush()
			for _, n := range w.names {
				w.svcs[n].SuspicionTick()
			}
		}
		if h := hooks[i]; h != nil {
			h()
		}
		if each != nil {
			each(i)
		}
	}
}

// images snapshots every member's store fingerprint in member order.
func (w *shardWorld) images() []byte {
	var buf bytes.Buffer
	for _, n := range w.names {
		fmt.Fprintf(&buf, "== %s ==\n", n)
		buf.Write(w.svcs[n].Store().Image())
	}
	return buf.Bytes()
}

// shardPartitionRun is the acceptance scenario: shardA owns two
// records, every other member imports both; the B--D tree edge severs
// at t=30s and restores at t=60s; one record is revoked at t=40s, mid-
// partition, so shardD can only learn of it by post-heal resync. It
// returns the plane transcript, the per-second state log, and the
// cluster-wide store image.
func shardPartitionRun(t *testing.T, seed int64, partitioned bool) (string, []string, []byte) {
	t.Helper()
	w := newShardWorld(t, seed)
	owner := w.svcs["shardA"]
	kept := owner.Store().NewFact(credrec.True)
	doomed := owner.Store().NewFact(credrec.True)

	type surrogate struct{ kept, doomed credrec.Ref }
	held := make(map[string]surrogate)
	for _, n := range w.names[1:] {
		svc := w.svcs[n]
		k, err := svc.ImportShardRecord("shardA", kept)
		if err != nil {
			t.Fatal(err)
		}
		d, err := svc.ImportShardRecord("shardA", doomed)
		if err != nil {
			t.Fatal(err)
		}
		held[n] = surrogate{kept: k, doomed: d}
	}

	if partitioned {
		w.plane.SetSchedule([]Step{
			{At: 30 * time.Second, Kind: "sever", A: "shardB", B: "shardD"},
			{At: 60 * time.Second, Kind: "restore", A: "shardB", B: "shardD"},
		})
	}

	hooks := map[int]func(){
		40: func() {
			if err := owner.Store().Invalidate(doomed); err != nil {
				t.Fatal(err)
			}
		},
	}
	hbTicks := int(hbPeriod / time.Second)
	var log []string
	w.drive(120, hooks, func(i int) {
		line := fmt.Sprintf("t=%d", i)
		for _, n := range w.names[1:] {
			svc, s := w.svcs[n], held[n]
			keptSt, _, _ := svc.Store().Resolve(s.kept)
			doomedSt, doomedPerm, _ := svc.Store().Resolve(s.doomed)
			line += fmt.Sprintf(" %s:kept=%v,doomed=%v/%t", n, keptSt, doomedSt, doomedPerm)

			// Safety off the starved subtree: members still connected to
			// the tree see the revocation the second it happens.
			if i >= 40 && (n == "shardB" || n == "shardC") && doomedSt != credrec.False {
				t.Fatalf("t=%d: %s missed the revocation despite a live tree path", i, n)
			}
		}
		log = append(log, line)
		if !partitioned {
			return
		}
		// Safety on the starved subtree: shardD hears nothing from the
		// origin past t=30, so within the fail-safe budget every
		// surrogate held from shardA is refused — including the revoked
		// one it cannot know about (§6.8.4 bounds the exposure).
		d := w.svcs["shardD"]
		if i >= 30+missedHB*hbTicks && i < 60 {
			if st, _, _ := d.Store().Resolve(held["shardD"].kept); st == credrec.True {
				t.Fatalf("t=%d: starved shard still trusts an unreachable origin", i)
			}
		}
		if i >= 40+missedHB*hbTicks {
			if st, _, _ := d.Store().Resolve(held["shardD"].doomed); st == credrec.True {
				t.Fatalf("t=%d: revoked record validated on the starved shard", i)
			}
		}
		// Liveness: within 3 heartbeats of the heal the resync has run —
		// the surviving record is trusted again and the revocation that
		// happened mid-partition has landed, permanently.
		if i >= 60+3*hbTicks {
			if st, _, _ := d.Store().Resolve(held["shardD"].kept); st != credrec.True {
				t.Fatalf("t=%d: surviving record not restored on healed shard", i)
			}
			st, perm, _ := d.Store().Resolve(held["shardD"].doomed)
			if st != credrec.False || !perm {
				t.Fatalf("t=%d: mid-partition revocation not recovered by resync (%v, perm=%t)", i, st, perm)
			}
		}
	})
	return w.plane.Transcript(), log, w.images()
}

func TestChaosShardPartitionResync(t *testing.T) {
	const seed = 23
	tr1, log1, img1 := shardPartitionRun(t, seed, true)

	// Determinism: same seed, same run — transcript, state log, and
	// every shard's final store, bit for bit.
	tr2, log2, img2 := shardPartitionRun(t, seed, true)
	if tr1 != tr2 {
		t.Fatalf("same seed, different transcripts:\n--- run1 ---\n%s\n--- run2 ---\n%s", tr1, tr2)
	}
	if len(log1) != len(log2) {
		t.Fatalf("log lengths differ: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("state logs diverge at %d:\n%s\n%s", i, log1[i], log2[i])
		}
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("same seed, different final stores")
	}

	// Convergence: the healed cluster is indistinguishable from one that
	// never partitioned — the starvation, fail-safe demotion and resync
	// left no trace beyond the revocation they recovered.
	_, _, ref := shardPartitionRun(t, seed, false)
	if !bytes.Equal(img1, ref) {
		t.Fatalf("post-heal cluster diverges from fault-free run:\n-- chaos --\n%s\n-- reference --\n%s", img1, ref)
	}
}
