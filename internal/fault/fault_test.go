package fault

import (
	"strings"
	"sync"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/event"
)

type sink struct {
	mu    sync.Mutex
	notes []event.Notification
}

func (s *sink) Call(from, op string, arg any) (any, error) { return arg, nil }
func (s *sink) Deliver(n event.Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notes = append(s.notes, n)
}
func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.notes)
}

// drive pushes a fixed traffic pattern through a fresh plane and
// returns the transcript.
func drive(seed int64) string {
	clk := clock.NewVirtual(time.Unix(0, 0))
	p := New(clk, seed)
	p.SetFaults("A", "B", Faults{Drop: 0.3, Dup: 0.2, Jitter: 40 * time.Millisecond})
	p.SetFaults("A", "C", Faults{Drop: 0.5})
	for i := 0; i < 100; i++ {
		p.Notify("A", "B")
		p.Notify("B", "A")
		p.Notify("A", "C")
		clk.Advance(10 * time.Millisecond)
	}
	return p.Transcript()
}

func TestTranscriptDeterministic(t *testing.T) {
	t1, t2 := drive(42), drive(42)
	if t1 != t2 {
		t.Fatal("same seed produced different transcripts")
	}
	if t1 == drive(43) {
		t.Fatal("different seeds produced identical transcripts")
	}
	if !strings.Contains(t1, "drop") {
		t.Fatal("transcript records no drops at drop=0.3 over 100 sends")
	}
}

func TestPerLinkStreamsIndependent(t *testing.T) {
	// The A->B decision sequence must not depend on traffic on other
	// links: interleaving A->C sends must leave it unchanged.
	run := func(interleave bool) []bool {
		clk := clock.NewVirtual(time.Unix(0, 0))
		p := New(clk, 7)
		p.SetFaults("A", "B", Faults{Drop: 0.5})
		p.SetFaults("A", "C", Faults{Drop: 0.5})
		var drops []bool
		for i := 0; i < 50; i++ {
			if interleave {
				p.Notify("A", "C")
			}
			drops = append(drops, p.Notify("A", "B").Drop)
		}
		return drops
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("A->B decision %d changed when A->C traffic interleaved", i)
		}
	}
}

func TestDropRateTracksProbability(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	p := New(clk, 1)
	p.SetFaults("A", "B", Faults{Drop: 0.3})
	dropped := 0
	for i := 0; i < 1000; i++ {
		if p.Notify("A", "B").Drop {
			dropped++
		}
	}
	if dropped < 230 || dropped > 370 {
		t.Fatalf("dropped %d of 1000 at p=0.3", dropped)
	}
	if p.Drops() != int64(dropped) {
		t.Fatalf("Drops() = %d, counted %d", p.Drops(), dropped)
	}
}

func TestPartitionCutsAcrossNotWithin(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	p := New(clk, 1)
	p.Split("net", []string{"A", "B"}, []string{"C", "D"})
	for _, tc := range []struct {
		from, to string
		blocked  bool
	}{
		{"A", "C", true}, {"C", "A", true}, {"B", "D", true},
		{"A", "B", false}, {"C", "D", false}, {"A", "X", false},
	} {
		if got := p.Blocked(tc.from, tc.to); got != tc.blocked {
			t.Errorf("Blocked(%s,%s) = %v, want %v", tc.from, tc.to, got, tc.blocked)
		}
		wantDrop := tc.blocked
		if got := p.Notify(tc.from, tc.to).Drop; got != wantDrop {
			t.Errorf("Notify(%s,%s).Drop = %v, want %v", tc.from, tc.to, got, wantDrop)
		}
	}
	p.Heal("net")
	if p.Blocked("A", "C") {
		t.Fatal("healed partition still blocks")
	}
}

func TestScheduleFiresOnClock(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	p := New(clk, 1)
	p.SetSchedule([]Step{
		{At: 10 * time.Second, Kind: "sever", A: "A", B: "B"},
		{At: 30 * time.Second, Kind: "restore", A: "A", B: "B"},
		{At: 5 * time.Second, Kind: "faults", A: "A", B: "C", Faults: Faults{Drop: 1}},
	})
	if p.Blocked("A", "B") || p.Notify("A", "C").Drop {
		t.Fatal("schedule fired before its time")
	}
	clk.Advance(6 * time.Second)
	if !p.Notify("A", "C").Drop {
		t.Fatal("faults step did not fire at 5s")
	}
	if p.Blocked("A", "B") {
		t.Fatal("sever fired early")
	}
	clk.Advance(6 * time.Second) // t=12s
	if !p.Blocked("A", "B") {
		t.Fatal("sever did not fire at 10s")
	}
	clk.Advance(20 * time.Second) // t=32s
	p.Tick()
	if p.Blocked("A", "B") {
		t.Fatal("restore did not fire at 30s")
	}
}

func TestParseSchedule(t *testing.T) {
	src := `
# warm-up, then a lossy phase, then a partition that heals
at 0s    faults login conf drop=0.2 dup=0.1 delay=5ms jitter=20ms
at 10s   sever login conf
at 12s   restore login conf
at 20s   split core login,conf clientA,clientB
at 40s   heal core
`
	steps, err := ParseSchedule(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 5 {
		t.Fatalf("parsed %d steps, want 5", len(steps))
	}
	f := steps[0].Faults
	if f.Drop != 0.2 || f.Dup != 0.1 || f.Delay != 5*time.Millisecond || f.Jitter != 20*time.Millisecond {
		t.Fatalf("faults = %+v", f)
	}
	if steps[3].Kind != "split" || len(steps[3].Side1) != 2 || steps[3].Side2[1] != "clientB" {
		t.Fatalf("split = %+v", steps[3])
	}
	for _, bad := range []string{
		"sever a b",                       // missing 'at'
		"at x sever a b",                  // bad offset
		"at -1s sever a b",                // negative offset
		"at 1s sever a",                   // missing peer
		"at 1s faults a b drop=2",         // probability out of range
		"at 1s faults a b wait=1s",        // unknown option
		"at 1s split p a,b",               // missing side
		"at 1s explode a b",               // unknown verb
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestPlaneOnNetwork(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	n := bus.NewNetwork(clk)
	dst := &sink{}
	if err := n.Register("B", dst); err != nil {
		t.Fatal(err)
	}
	p := New(clk, 9)
	p.Install(n)

	// Total loss: nothing delivered, drops counted on the network.
	p.SetFaults("A", "B", Faults{Drop: 1})
	before := n.Dropped()
	for i := 0; i < 5; i++ {
		n.Send("A", "B", event.Notification{Seq: uint64(i)})
	}
	if dst.count() != 0 {
		t.Fatal("notifications crossed a drop=1 link")
	}
	if n.Dropped()-before != 5 {
		t.Fatalf("network counted %d drops, want 5", n.Dropped()-before)
	}

	// Duplication: exactly two copies arrive.
	p.SetFaults("A", "B", Faults{Dup: 1})
	n.Send("A", "B", event.Notification{Seq: 100})
	if dst.count() != 2 {
		t.Fatalf("dup=1 delivered %d copies, want 2", dst.count())
	}

	// Partition severs calls through the policy, and heals.
	p.Split("p", []string{"A"}, []string{"B"})
	if _, err := n.Call("A", "B", "echo", 1); err == nil {
		t.Fatal("call crossed partition")
	}
	p.Heal("p")
	if _, err := n.Call("A", "B", "echo", 1); err != nil {
		t.Fatalf("call after heal failed: %v", err)
	}

	// Jitter delays go through the bus delivery queue.
	p.SetFaults("A", "B", Faults{Delay: 50 * time.Millisecond})
	n.Send("A", "B", event.Notification{Seq: 200})
	if dst.count() != 2 {
		t.Fatal("delayed notification arrived immediately")
	}
	clk.Advance(time.Second)
	n.Flush()
	if dst.count() != 3 {
		t.Fatalf("delayed notification lost: %d", dst.count())
	}
}
