// Package fault is the deterministic fault-injection plane: it wraps
// the bus link layer (bus.LinkPolicy) with programmable, clock-driven
// fault schedules — per-link drop probability, duplication, reorder
// (randomized added delay), and named partitions — so that the
// interworking protocols of chapter 4 can be exercised under the
// failures §6.8 assumes. Every decision is drawn from a PRNG stream
// seeded from (seed, link), and schedule steps fire on the injected
// clock, so a chaos run is exactly reproducible from (seed, schedule):
// the Transcript of two runs with the same inputs is byte-identical.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
)

// Faults is the per-link fault profile.
type Faults struct {
	// Drop is the probability a notification is lost in transit.
	Drop float64
	// Dup is the probability a notification is delivered twice.
	Dup float64
	// Delay is a fixed delivery delay added to every notification.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter); because the
	// bus delivery queue is ordered by due time, jitter reorders.
	Jitter time.Duration
}

func (f Faults) zero() bool {
	return f.Drop == 0 && f.Dup == 0 && f.Delay == 0 && f.Jitter == 0
}

func (f Faults) String() string {
	return fmt.Sprintf("drop=%g dup=%g delay=%s jitter=%s", f.Drop, f.Dup, f.Delay, f.Jitter)
}

// pair is an unordered link key (faults and partitions are symmetric).
type pair struct{ lo, hi string }

func mkPair(a, b string) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// partition is a named network split: links between the two sides are
// severed until healed.
type partition struct {
	side1, side2 map[string]bool
}

func (pt partition) cuts(from, to string) bool {
	return (pt.side1[from] && pt.side2[to]) || (pt.side2[from] && pt.side1[to])
}

// Plane implements bus.LinkPolicy. Install it with Install (or
// bus.Network.SetLinkPolicy) and drive it either imperatively
// (SetFaults/Sever/Split/Heal) or from a Schedule whose steps fire as
// the injected clock passes their offsets.
//
// The plane's mutex is a leaf: no code path holds it across a channel
// send or a call back into the bus.
type Plane struct {
	clk   clock.Clock
	seed  int64
	start time.Time

	mu         sync.Mutex
	faults     map[pair]Faults
	severed    map[pair]bool
	parts      map[string]partition
	streams    map[string]*rand.Rand // directed "from->to"
	schedule   []Step
	nextStep   int
	transcript []string

	drops  atomic.Int64 // policy-decided drops (incl. severed links)
	dups   atomic.Int64
	delays atomic.Int64
}

// New creates a fault plane over the given clock. The plane's time
// origin (schedule offset zero) is the clock's current time.
func New(clk clock.Clock, seed int64) *Plane {
	return &Plane{
		clk:     clk,
		seed:    seed,
		start:   clk.Now(),
		faults:  make(map[pair]Faults),
		severed: make(map[pair]bool),
		parts:   make(map[string]partition),
		streams: make(map[string]*rand.Rand),
	}
}

// Install makes the plane the network's link policy.
func (p *Plane) Install(n *bus.Network) { n.SetLinkPolicy(p) }

// Seed returns the seed the plane was created with.
func (p *Plane) Seed() int64 { return p.seed }

// stream returns the PRNG stream for a directed link, created on first
// use and seeded from (seed, from->to) so that the draw sequence on one
// link is independent of traffic on every other link.
func (p *Plane) stream(from, to string) *rand.Rand {
	key := from + "->" + to
	if r, ok := p.streams[key]; ok {
		return r
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", p.seed, key)
	r := rand.New(rand.NewSource(int64(h.Sum64())))
	p.streams[key] = r
	return r
}

// SetFaults installs the fault profile for the (bidirectional) link.
// The zero Faults clears it.
func (p *Plane) SetFaults(a, b string, f Faults) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.setFaultsLocked(a, b, f)
}

func (p *Plane) setFaultsLocked(a, b string, f Faults) {
	k := mkPair(a, b)
	if f.zero() {
		delete(p.faults, k)
	} else {
		p.faults[k] = f
	}
	p.record("faults %s~%s %s", k.lo, k.hi, f)
}

// Sever cuts the (bidirectional) link: notifications across it drop,
// synchronous calls fail with bus.ErrUnreachable.
func (p *Plane) Sever(a, b string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.severLocked(a, b)
}

func (p *Plane) severLocked(a, b string) {
	k := mkPair(a, b)
	p.severed[k] = true
	p.record("sever %s~%s", k.lo, k.hi)
}

// Restore undoes Sever.
func (p *Plane) Restore(a, b string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.restoreLocked(a, b)
}

func (p *Plane) restoreLocked(a, b string) {
	k := mkPair(a, b)
	delete(p.severed, k)
	p.record("restore %s~%s", k.lo, k.hi)
}

// Split opens a named partition: every link with one end in side1 and
// the other in side2 is severed until Heal(name). Links within a side
// are untouched.
func (p *Plane) Split(name string, side1, side2 []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.splitLocked(name, side1, side2)
}

func (p *Plane) splitLocked(name string, side1, side2 []string) {
	pt := partition{side1: make(map[string]bool), side2: make(map[string]bool)}
	for _, s := range side1 {
		pt.side1[s] = true
	}
	for _, s := range side2 {
		pt.side2[s] = true
	}
	p.parts[name] = pt
	p.record("split %s %s | %s", name, strings.Join(side1, ","), strings.Join(side2, ","))
}

// Heal closes a named partition.
func (p *Plane) Heal(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.healLocked(name)
}

func (p *Plane) healLocked(name string) {
	delete(p.parts, name)
	p.record("heal %s", name)
}

// blockedLocked is the severed-link query: explicit Sever or any open
// partition cutting the pair.
func (p *Plane) blockedLocked(from, to string) bool {
	if p.severed[mkPair(from, to)] {
		return true
	}
	for _, pt := range p.parts {
		if pt.cuts(from, to) {
			return true
		}
	}
	return false
}

// Blocked implements bus.LinkPolicy: a pure severed-link query,
// consulted on the synchronous call path and again when a delayed
// notification comes due. It consumes no randomness.
func (p *Plane) Blocked(from, to string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applyDueLocked()
	return p.blockedLocked(from, to)
}

// Notify implements bus.LinkPolicy: the send-time verdict for one
// asynchronous notification. It draws from the link's PRNG stream.
func (p *Plane) Notify(from, to string) bus.Verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applyDueLocked()
	if p.blockedLocked(from, to) {
		p.drops.Add(1)
		p.record("%s: %s->%s drop (severed)", p.elapsed(), from, to)
		return bus.Verdict{Drop: true, Copies: 1}
	}
	f, ok := p.faults[mkPair(from, to)]
	if !ok {
		return bus.Verdict{Copies: 1}
	}
	rng := p.stream(from, to)
	v := bus.Verdict{Copies: 1}
	if f.Drop > 0 && rng.Float64() < f.Drop {
		p.drops.Add(1)
		p.record("%s: %s->%s drop", p.elapsed(), from, to)
		v.Drop = true
		return v
	}
	if f.Dup > 0 && rng.Float64() < f.Dup {
		p.dups.Add(1)
		p.record("%s: %s->%s dup", p.elapsed(), from, to)
		v.Copies = 2
	}
	v.Delay = f.Delay
	if f.Jitter > 0 {
		v.Delay += time.Duration(rng.Int63n(int64(f.Jitter)))
	}
	if v.Delay > 0 {
		p.delays.Add(1)
		p.record("%s: %s->%s delay %s", p.elapsed(), from, to, v.Delay)
	}
	return v
}

// Drops reports notifications the plane decided to drop (including
// sends into severed links). Dups and Delayed likewise.
func (p *Plane) Drops() int64   { return p.drops.Load() }
func (p *Plane) Dups() int64    { return p.dups.Load() }
func (p *Plane) Delayed() int64 { return p.delays.Load() }

// elapsed formats the plane-relative time of a decision.
func (p *Plane) elapsed() time.Duration {
	return p.clk.Now().Sub(p.start)
}

// record appends a transcript line; caller holds p.mu.
func (p *Plane) record(format string, args ...any) {
	p.transcript = append(p.transcript, fmt.Sprintf(format, args...))
}

// Transcript returns the decision/transition log so far, one entry per
// line. Two runs with the same (seed, schedule) and the same driven
// traffic produce byte-identical transcripts — the determinism
// contract the chaos suite asserts.
func (p *Plane) Transcript() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.transcript, "\n")
}

// Step is one scheduled transition.
type Step struct {
	At   time.Duration // offset from the plane's start time
	Kind string        // "faults", "sever", "restore", "split", "heal"

	A, B   string // faults / sever / restore
	Faults Faults // faults

	Name         string   // split / heal
	Side1, Side2 []string // split
}

func (s Step) String() string {
	switch s.Kind {
	case "faults":
		return fmt.Sprintf("at %s faults %s %s %s", s.At, s.A, s.B, s.Faults)
	case "sever", "restore":
		return fmt.Sprintf("at %s %s %s %s", s.At, s.Kind, s.A, s.B)
	case "split":
		return fmt.Sprintf("at %s split %s %s | %s", s.At, s.Name,
			strings.Join(s.Side1, ","), strings.Join(s.Side2, ","))
	case "heal":
		return fmt.Sprintf("at %s heal %s", s.At, s.Name)
	}
	return fmt.Sprintf("at %s ?%s", s.At, s.Kind)
}

// SetSchedule installs the transition schedule. Steps are sorted by
// offset (stable, so same-offset steps keep their order) and fire
// lazily: each policy query first applies every step whose time has
// passed on the clock, so a single-threaded simulation applies them at
// deterministic points.
func (p *Plane) SetSchedule(steps []Step) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.schedule = make([]Step, len(steps))
	copy(p.schedule, steps)
	sort.SliceStable(p.schedule, func(i, j int) bool {
		return p.schedule[i].At < p.schedule[j].At
	})
	p.nextStep = 0
}

// Tick applies any schedule steps whose time has arrived. Simulations
// that want transitions to land even on quiet links call it after each
// clock advance; it is also implied by every Notify/Blocked query.
func (p *Plane) Tick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applyDueLocked()
}

func (p *Plane) applyDueLocked() {
	now := p.clk.Now()
	for p.nextStep < len(p.schedule) {
		s := p.schedule[p.nextStep]
		if p.start.Add(s.At).After(now) {
			return
		}
		p.nextStep++
		p.record("t=%s %s", s.At, stepVerb(s))
		switch s.Kind {
		case "faults":
			p.setFaultsLocked(s.A, s.B, s.Faults)
		case "sever":
			p.severLocked(s.A, s.B)
		case "restore":
			p.restoreLocked(s.A, s.B)
		case "split":
			p.splitLocked(s.Name, s.Side1, s.Side2)
		case "heal":
			p.healLocked(s.Name)
		}
	}
}

func stepVerb(s Step) string {
	switch s.Kind {
	case "faults", "sever", "restore":
		return fmt.Sprintf("schedule %s %s~%s", s.Kind, s.A, s.B)
	default:
		return fmt.Sprintf("schedule %s %s", s.Kind, s.Name)
	}
}
