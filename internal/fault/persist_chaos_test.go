package fault

import (
	"bytes"
	"fmt"
	"testing"

	"oasis/internal/credrec"
	"oasis/internal/credrec/storage"
)

// Crash-consistency suite for the persistence engine. The Memory
// backend models durability exactly — a synced watermark per segment,
// advanced only by fsync — so a "crash" is a pure function: Crash(extra)
// yields the bytes a power loss would leave. Each scenario executes a
// deterministic operation script, kills the engine at every possible
// point, recovers, and asserts:
//
//   - safety: the recovered store equals the fault-free store after
//     some durable prefix of the script (exactly the completed prefix
//     under SyncAlways), so no revocation a client saw acknowledged is
//     forgotten;
//   - convergence: replaying the remainder of the script on the
//     recovered store ends in the byte-identical image of a run that
//     never crashed — the same obligation the partition suite
//     (chaos_test.go) checks for network faults, here for storage
//     faults.

// pstep is one scripted operation. refs accumulates every minted
// reference; determinism of the allocator guarantees the same script
// mints the same refs in every store.
type pstep struct {
	name string
	run  func(r credrec.Recorder, refs *[]credrec.Ref)
}

func mint(ref credrec.Ref, refs *[]credrec.Ref) { *refs = append(*refs, ref) }

func at(refs *[]credrec.Ref, i int) credrec.Ref { return (*refs)[i%len(*refs)] }

// persistScript is a fixed workload touching every journaled operation:
// allocation, cascade revocation, permanence, sweeps and source-wide
// transitions. Every step journals exactly one record — the batched
// kill-point test depends on that, because a group-commit batch can end
// between any two records and recovery must land on a step boundary.
func persistScript() []pstep {
	var s []pstep
	add := func(name string, run func(r credrec.Recorder, refs *[]credrec.Ref)) {
		s = append(s, pstep{name, run})
	}
	add("ext-login", func(r credrec.Recorder, refs *[]credrec.Ref) { mint(r.NewExternal("login", credrec.True), refs) })
	add("fact-0", func(r credrec.Recorder, refs *[]credrec.Ref) { mint(r.NewFact(credrec.True), refs) })
	for i := 0; i < 6; i++ {
		i := i
		add(fmt.Sprintf("derive-%d", i), func(r credrec.Recorder, refs *[]credrec.Ref) {
			mint(r.NewDerived(credrec.OpAnd, credrec.Of(at(refs, i)), credrec.Of(at(refs, i+1))), refs)
		})
		add(fmt.Sprintf("use-%d", i), func(r credrec.Recorder, refs *[]credrec.Ref) {
			_ = r.MarkDirectUse(at(refs, len(*refs)-1))
		})
	}
	add("revoke-2", func(r credrec.Recorder, refs *[]credrec.Ref) { _ = r.Invalidate(at(refs, 2)) })
	add("flip-3-false", func(r credrec.Recorder, refs *[]credrec.Ref) { _ = r.SetState(at(refs, 3), credrec.False) })
	add("flip-3-true", func(r credrec.Recorder, refs *[]credrec.Ref) { _ = r.SetState(at(refs, 3), credrec.True) })
	add("permanent-4", func(r credrec.Recorder, refs *[]credrec.Ref) { _ = r.MakePermanent(at(refs, 4)) })
	add("sweep-1", func(r credrec.Recorder, refs *[]credrec.Ref) { r.Sweep() })
	for i := 0; i < 4; i++ {
		i := i
		add(fmt.Sprintf("fact-reuse-%d", i), func(r credrec.Recorder, refs *[]credrec.Ref) {
			mint(r.NewFact(credrec.True), refs)
		})
	}
	add("suspect-login", func(r credrec.Recorder, refs *[]credrec.Ref) { r.MarkSourceUnknown("login") })
	add("failsafe-login", func(r credrec.Recorder, refs *[]credrec.Ref) { r.MarkSourceFailsafe("login") })
	add("resync-login", func(r credrec.Recorder, refs *[]credrec.Ref) {
		for _, ref := range r.ExternalRefs("login") {
			_ = r.SetState(ref, credrec.True)
		}
	})
	add("revoke-5", func(r credrec.Recorder, refs *[]credrec.Ref) { _ = r.Invalidate(at(refs, 5)) })
	add("sweep-2", func(r credrec.Recorder, refs *[]credrec.Ref) { r.Sweep() })
	add("fact-final", func(r credrec.Recorder, refs *[]credrec.Ref) { mint(r.NewFact(credrec.Unknown), refs) })
	return s
}

// prefixImages runs the script on a plain in-memory store, capturing
// the image after every step: prefixImages[k] is the fault-free state
// once steps < k have executed.
func prefixImages(script []pstep) [][]byte {
	st := credrec.NewStore()
	var refs []credrec.Ref
	images := make([][]byte, 0, len(script)+1)
	images = append(images, st.Image())
	for _, step := range script {
		step.run(st, &refs)
		images = append(images, st.Image())
	}
	return images
}

// runPrefix executes steps < k on r, returning the accumulated refs.
func runPrefix(script []pstep, r credrec.Recorder, k int) []credrec.Ref {
	var refs []credrec.Ref
	for _, step := range script[:k] {
		step.run(r, &refs)
	}
	return refs
}

// TestKillPointsSyncAlways crashes after every step under SyncAlways.
// The durable prefix is exactly the completed steps, so recovery must
// land on prefix image k — and finishing the script must converge to
// the fault-free final image.
func TestKillPointsSyncAlways(t *testing.T) {
	script := persistScript()
	images := prefixImages(script)
	// Snapshot+compaction at this step exercises snapshot-plus-tail
	// recovery for every later kill point.
	const snapshotAt = 9

	for k := 0; k <= len(script); k++ {
		be := storage.NewMemory()
		eng, err := storage.Open(be, storage.Options{Sync: credrec.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		refs := runPrefix(script, eng.Store(), min(k, snapshotAt))
		if k > snapshotAt {
			if err := eng.Snapshot(); err != nil {
				t.Fatal(err)
			}
			for _, step := range script[snapshotAt:k] {
				step.run(eng.Store(), &refs)
			}
		}

		// Power loss. The engine object is abandoned, as a crash would.
		crashed := be.Crash(0)
		eng2, err := storage.Open(crashed, storage.Options{})
		if err != nil {
			t.Fatalf("kill after step %d: recovery failed: %v", k, err)
		}
		if got := eng2.Store().Image(); !bytes.Equal(got, images[k]) {
			t.Fatalf("kill after step %d (%q): recovered image is not the durable prefix\n-- recovered --\n%s\n-- want --\n%s",
				k, stepName(script, k), got, images[k])
		}
		// Convergence: finish the script on the recovered store. The ref
		// table is rebuilt on a scratch store — allocation determinism
		// makes it identical to the one the crashed run held.
		cont := runPrefix(script, credrec.NewStore(), k)
		for _, step := range script[k:] {
			step.run(eng2.Store(), &cont)
		}
		if got := eng2.Store().Image(); !bytes.Equal(got, images[len(script)]) {
			t.Fatalf("kill after step %d: post-recovery run diverged from fault-free image", k)
		}
		if err := eng2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func stepName(script []pstep, k int) string {
	if k == 0 {
		return "start"
	}
	return script[k-1].name
}

// TestKillPointsSyncBatched crashes under the batched policy, where the
// durable prefix is whatever the group committer had fsynced. Recovery
// must land on SOME prefix image — never a state the fault-free run
// cannot reach (no reordering, no partial application) — and converge
// once the lost tail is re-run.
func TestKillPointsSyncBatched(t *testing.T) {
	script := persistScript()
	images := prefixImages(script)
	for k := 0; k <= len(script); k++ {
		be := storage.NewMemory()
		eng, err := storage.Open(be, storage.Options{Sync: credrec.SyncBatched})
		if err != nil {
			t.Fatal(err)
		}
		runPrefix(script, eng.Store(), k)
		crashed := be.Crash(0)
		eng2, err := storage.Open(crashed, storage.Options{})
		if err != nil {
			t.Fatalf("kill after step %d: recovery failed: %v", k, err)
		}
		got := eng2.Store().Image()
		prefix := -1
		for j := 0; j <= k; j++ {
			if bytes.Equal(got, images[j]) {
				prefix = j
				break
			}
		}
		if prefix < 0 {
			t.Fatalf("kill after step %d: recovered image matches no durable prefix", k)
		}
		// Converge from the surviving prefix.
		cont := runPrefix(script, credrec.NewStore(), prefix)
		for _, step := range script[prefix:] {
			step.run(eng2.Store(), &cont)
		}
		if !bytes.Equal(eng2.Store().Image(), images[len(script)]) {
			t.Fatalf("kill after step %d: convergence from prefix %d failed", k, prefix)
		}
		if err := eng2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillPointTornTail crashes with partial unsynced bytes surviving,
// producing a torn final record at every byte boundary. Recovery must
// drop the tear, land on a durable prefix, and stay deterministic.
func TestKillPointTornTail(t *testing.T) {
	script := persistScript()
	images := prefixImages(script)
	const k = 12 // kill point; unsynced tail torn at every length
	for extra := 0; extra < 64; extra++ {
		be := storage.NewMemory()
		eng, err := storage.Open(be, storage.Options{Sync: credrec.SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		runPrefix(script, eng.Store(), k)
		if err := eng.Store().Sync(); err != nil { // drain the queue; fsync never happens under SyncNone
			t.Fatal(err)
		}
		crashed := be.Crash(extra)
		eng2, err := storage.Open(crashed, storage.Options{})
		if err != nil {
			t.Fatalf("extra=%d: recovery failed: %v", extra, err)
		}
		got := eng2.Store().Image()
		ok := false
		for j := 0; j <= k; j++ {
			if bytes.Equal(got, images[j]) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("extra=%d: torn recovery matches no durable prefix", extra)
		}
		// Determinism: the same crash recovers to the same image twice.
		eng3, err := storage.Open(be.Crash(extra), storage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(eng3.Store().Image(), got) {
			t.Fatalf("extra=%d: identical crashes recovered differently", extra)
		}
		eng2.Close()
		eng3.Close()
	}
}

// TestKillPointMidSnapshot crashes during snapshot installation: the
// install is atomic, so recovery sees the old snapshot (or none) plus
// the intact journal — nothing is lost, nothing is double-applied.
func TestKillPointMidSnapshot(t *testing.T) {
	script := persistScript()
	images := prefixImages(script)
	const k = 14

	be := storage.NewMemory()
	eng, err := storage.Open(be, storage.Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	refs := runPrefix(script, eng.Store(), k)
	be.FailNextSnapshot()
	if err := eng.Snapshot(); err == nil {
		t.Fatal("injected snapshot failure not surfaced")
	}
	// The store keeps journaling after the failed install.
	for _, step := range script[k:] {
		step.run(eng.Store(), &refs)
	}

	eng2, err := storage.Open(be.Crash(0), storage.Options{})
	if err != nil {
		t.Fatalf("recovery after failed snapshot install: %v", err)
	}
	defer eng2.Close()
	if snap, _, _, _ := eng2.Recovered(); snap != 0 {
		t.Fatalf("recovered from snapshot %d that never installed", snap)
	}
	if !bytes.Equal(eng2.Store().Image(), images[len(script)]) {
		t.Fatal("recovery after failed snapshot install lost operations")
	}
}

// TestRevocationsStayRevoked is the paper's §4.10 safety obligation
// against storage faults: once a revocation has been acknowledged under
// SyncAlways, EVERY subsequent crash/recovery — at any kill point, with
// any torn tail — yields a store in which the credential is still
// invalid.
func TestRevocationsStayRevoked(t *testing.T) {
	for extra := 0; extra < 32; extra++ {
		be := storage.NewMemory()
		eng, err := storage.Open(be, storage.Options{Sync: credrec.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		ls := eng.Store()
		root := ls.NewFact(credrec.True)
		member := ls.NewDerived(credrec.OpAnd, credrec.Of(root))
		if err := ls.MarkDirectUse(member); err != nil {
			t.Fatal(err)
		}
		if err := ls.Invalidate(root); err != nil {
			t.Fatal(err) // acknowledged: durable by SyncAlways
		}
		// Unsynced noise after the acknowledgement, then a crash that
		// preserves an arbitrary slice of it.
		for i := 0; i < 8; i++ {
			ls.NewFact(credrec.True)
		}
		eng2, err := storage.Open(be.Crash(extra), storage.Options{})
		if err != nil {
			t.Fatalf("extra=%d: %v", extra, err)
		}
		if eng2.Store().Valid(member) {
			t.Fatalf("extra=%d: acknowledged revocation forgotten after crash", extra)
		}
		if s, _, _ := eng2.Store().Resolve(member); s != credrec.False {
			t.Fatalf("extra=%d: revoked member resolves %v", extra, s)
		}
		eng2.Close()
	}
}
