package value

import (
	"testing"
)

// FuzzValueUnmarshal checks that Unmarshal never panics on arbitrary
// input, and that anything it accepts survives a Marshal → Unmarshal
// round trip with the canonical encoding.
func FuzzValueUnmarshal(f *testing.F) {
	seeds := []string{
		"i:3",
		"i:-9223372036854775808",
		`s:"a,b"`,
		`s:"\""`,
		`s:"back\\slash"`,
		`s:""`,
		"b:rwx:7",
		"b:rwx:0",
		"b:longuniverse0123456789:ffff",
		"o:Login.userid:dm",
		"o::",
		"i:",
		"s:unquoted",
		"b:rwx",
		"x:3",
		"",
		":",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Unmarshal(s)
		if err != nil {
			return
		}
		m := v.Marshal()
		v2, err := Unmarshal(m)
		if err != nil {
			t.Fatalf("Unmarshal(Marshal(%q) = %q) failed: %v", s, m, err)
		}
		if m2 := v2.Marshal(); m2 != m {
			t.Fatalf("marshal not canonical: %q → %q → %q", s, m, m2)
		}
	})
}

// FuzzUnmarshalArgs checks the quote-aware comma splitter: no panics,
// and accepted vectors round-trip through MarshalArgs byte-for-byte.
func FuzzUnmarshalArgs(f *testing.F) {
	seeds := []string{
		"",
		"i:1",
		"i:1,i:2,i:3",
		`s:"a,b",i:7`,
		`s:"comma , inside",s:"quote \" inside"`,
		`s:"trailing backslash \\",b:rwx:5`,
		`o:Doc.read:alice,b:perm:3,s:"x"`,
		"i:1,,i:2",
		",",
		`s:"unterminated`,
		`s:"\",i:1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		args, err := UnmarshalArgs(s)
		if err != nil {
			return
		}
		m := MarshalArgs(args)
		args2, err := UnmarshalArgs(m)
		if err != nil {
			t.Fatalf("UnmarshalArgs(MarshalArgs(%q) = %q) failed: %v", s, m, err)
		}
		if len(args2) != len(args) {
			t.Fatalf("arg count changed: %q → %d args → %q → %d args", s, len(args), m, len(args2))
		}
		if m2 := MarshalArgs(args2); m2 != m {
			t.Fatalf("marshal not canonical: %q → %q → %q", s, m, m2)
		}
	})
}
