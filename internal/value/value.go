// Package value implements the strongly typed argument system that RDL
// roles and OASIS certificates share (sections 3.2.1 and 4.3 of the
// paper).
//
// Role arguments may be Integers, Strings, set types such as {rwx}, or
// named object types. Object and set types are deliberately "simple":
// there is no sub-typing. Arguments are marshalled into a host-independent
// form so that services other than the issuer can examine them; object
// identifiers may only be compared for equality in their marshalled form,
// and sets marshal to a bit-set supporting equality and subset tests.
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the RDL argument kinds.
type Kind int

// The argument kinds of RDL.
const (
	KindInt Kind = iota + 1
	KindString
	KindSet
	KindObject
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "Integer"
	case KindString:
		return "String"
	case KindSet:
		return "Set"
	case KindObject:
		return "Object"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Type describes an RDL argument type. For sets, Universe gives the
// ordered alphabet of allowed elements (e.g. "rwx"); for objects, Name
// identifies the object type whose literals the issuing service parses.
type Type struct {
	Kind     Kind
	Universe string // set types: ordered element alphabet
	Name     string // object types: type name, e.g. "Login.userid"
}

// String renders the type in RDL surface syntax.
func (t Type) String() string {
	switch t.Kind {
	case KindInt:
		return "integer"
	case KindString:
		return "string"
	case KindSet:
		return "{" + t.Universe + "}"
	case KindObject:
		return t.Name
	default:
		return "invalid"
	}
}

// Equal reports type identity. There is no compatibility relation
// between distinct types (section 3.2.1).
func (t Type) Equal(o Type) bool { return t == o }

// IntType, StringType are the built-in scalar types.
var (
	IntType    = Type{Kind: KindInt}
	StringType = Type{Kind: KindString}
)

// SetType returns the set type over the given element alphabet.
func SetType(universe string) Type { return Type{Kind: KindSet, Universe: universe} }

// ObjectType returns a named object type.
func ObjectType(name string) Type { return Type{Kind: KindObject, Name: name} }

// Value is a typed RDL value. Exactly one of the payload fields is
// meaningful, selected by T.Kind.
type Value struct {
	T   Type
	I   int64  // KindInt
	S   string // KindString; KindObject holds the marshalled object id
	Set uint64 // KindSet: bit i set means Universe[i] present
}

// Int constructs an integer value.
func Int(i int64) Value { return Value{T: IntType, I: i} }

// Str constructs a string value.
func Str(s string) Value { return Value{T: StringType, S: s} }

// Object constructs an object-identifier value of the given type name.
// The id is the marshalled, host-independent form.
func Object(typeName, id string) Value {
	return Value{T: ObjectType(typeName), S: id}
}

// Set constructs a set value over a universe from its member string.
// Elements not in the universe are rejected.
func Set(universe, members string) (Value, error) {
	v := Value{T: SetType(universe)}
	for _, m := range members {
		i := strings.IndexRune(universe, m)
		if i < 0 {
			return Value{}, fmt.Errorf("value: element %q not in set universe {%s}", m, universe)
		}
		v.Set |= 1 << uint(i)
	}
	return v, nil
}

// MustSet is Set for known-good literals; it panics on error and is
// intended for tests and static tables.
func MustSet(universe, members string) Value {
	v, err := Set(universe, members)
	if err != nil {
		panic(err)
	}
	return v
}

// Members returns the set elements as a string in universe order.
func (v Value) Members() string {
	if v.T.Kind != KindSet {
		return ""
	}
	var b strings.Builder
	for i, r := range v.T.Universe {
		if v.Set&(1<<uint(i)) != 0 {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Equal is the only admissible comparison for objects; it is also defined
// for every other kind.
func (v Value) Equal(o Value) bool {
	if !v.T.Equal(o.T) {
		return false
	}
	switch v.T.Kind {
	case KindInt:
		return v.I == o.I
	case KindString, KindObject:
		return v.S == o.S
	case KindSet:
		return v.Set == o.Set
	default:
		return false
	}
}

// SubsetOf reports whether v ⊆ o; both must be sets over the same
// universe (section 4.3: bit-sets allow equality and subset tests).
func (v Value) SubsetOf(o Value) (bool, error) {
	if v.T.Kind != KindSet || !v.T.Equal(o.T) {
		return false, fmt.Errorf("value: subset test requires sets of identical type, got %v and %v", v.T, o.T)
	}
	return v.Set&^o.Set == 0, nil
}

// Union returns v ∪ o over the same universe.
func (v Value) Union(o Value) (Value, error) {
	if v.T.Kind != KindSet || !v.T.Equal(o.T) {
		return Value{}, fmt.Errorf("value: union requires sets of identical type")
	}
	return Value{T: v.T, Set: v.Set | o.Set}, nil
}

// Intersect returns v ∩ o over the same universe.
func (v Value) Intersect(o Value) (Value, error) {
	if v.T.Kind != KindSet || !v.T.Equal(o.T) {
		return Value{}, fmt.Errorf("value: intersection requires sets of identical type")
	}
	return Value{T: v.T, Set: v.Set & o.Set}, nil
}

// Minus returns v \ o over the same universe.
func (v Value) Minus(o Value) (Value, error) {
	if v.T.Kind != KindSet || !v.T.Equal(o.T) {
		return Value{}, fmt.Errorf("value: difference requires sets of identical type")
	}
	return Value{T: v.T, Set: v.Set &^ o.Set}, nil
}

// String renders the value in RDL literal syntax.
func (v Value) String() string {
	switch v.T.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindString:
		return strconv.Quote(v.S)
	case KindSet:
		return "{" + v.Members() + "}"
	case KindObject:
		return v.T.Name + ":" + v.S
	default:
		return "<invalid>"
	}
}

// Marshal renders the value in the host-independent wire form used inside
// certificates. The form is self-describing and canonical: equal values
// marshal identically, so marshalled equality equals Equal.
func (v Value) Marshal() string {
	switch v.T.Kind {
	case KindInt:
		return "i:" + strconv.FormatInt(v.I, 10)
	case KindString:
		return "s:" + strconv.Quote(v.S)
	case KindSet:
		return "b:" + v.T.Universe + ":" + strconv.FormatUint(v.Set, 16)
	case KindObject:
		return "o:" + v.T.Name + ":" + v.S
	default:
		return "?"
	}
}

// Unmarshal parses the wire form produced by Marshal.
func Unmarshal(s string) (Value, error) {
	if len(s) < 2 || s[1] != ':' {
		return Value{}, fmt.Errorf("value: malformed wire value %q", s)
	}
	body := s[2:]
	switch s[0] {
	case 'i':
		i, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad integer %q: %v", body, err)
		}
		return Int(i), nil
	case 's':
		str, err := strconv.Unquote(body)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad string %q: %v", body, err)
		}
		return Str(str), nil
	case 'b':
		i := strings.LastIndexByte(body, ':')
		if i < 0 {
			return Value{}, fmt.Errorf("value: bad set %q", body)
		}
		bits, err := strconv.ParseUint(body[i+1:], 16, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad set bits %q: %v", body[i+1:], err)
		}
		return Value{T: SetType(body[:i]), Set: bits}, nil
	case 'o':
		i := strings.IndexByte(body, ':')
		if i < 0 {
			return Value{}, fmt.Errorf("value: bad object %q", body)
		}
		return Object(body[:i], body[i+1:]), nil
	default:
		return Value{}, fmt.Errorf("value: unknown wire kind %q", s[0])
	}
}

// MarshalArgs renders an argument vector canonically for embedding in a
// certificate signature.
func MarshalArgs(args []Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.Marshal()
	}
	return strings.Join(parts, ",")
}

// UnmarshalArgs parses a vector produced by MarshalArgs.
func UnmarshalArgs(s string) ([]Value, error) {
	if s == "" {
		return nil, nil
	}
	// Values may contain commas only inside quoted strings; split carefully.
	var (
		args  []Value
		depth bool // inside quotes
		start int
	)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				v, err := Unmarshal(s[start:i])
				if err != nil {
					return nil, err
				}
				args = append(args, v)
				start = i + 1
			}
		}
	}
	v, err := Unmarshal(s[start:])
	if err != nil {
		return nil, err
	}
	return append(args, v), nil
}

// Env is a variable environment mapping RDL variable names to values.
// Environments are persistent-ish: Extend copies, so earlier bindings are
// never mutated (important for independent composite-event evaluations).
type Env map[string]Value

// Extend returns a copy of e with name bound to v.
func (e Env) Extend(name string, v Value) Env {
	n := make(Env, len(e)+1)
	for k, val := range e {
		n[k] = val
	}
	n[name] = v
	return n
}

// Clone returns a copy of e.
func (e Env) Clone() Env {
	n := make(Env, len(e))
	for k, v := range e {
		n[k] = v
	}
	return n
}

// Names returns the bound variable names in sorted order.
func (e Env) Names() []string {
	names := make([]string, 0, len(e))
	for k := range e {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the environment deterministically.
func (e Env) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range e.Names() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(e[n].String())
	}
	b.WriteByte('}')
	return b.String()
}
