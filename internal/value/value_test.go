package value

import (
	"testing"
	"testing/quick"
)

func TestSetConstruction(t *testing.T) {
	v, err := Set("rwx", "rx")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Members(); got != "rx" {
		t.Fatalf("Members() = %q, want %q", got, "rx")
	}
	if _, err := Set("rwx", "z"); err == nil {
		t.Fatal("element outside universe accepted")
	}
}

func TestSetAlgebra(t *testing.T) {
	rw := MustSet("rwx", "rw")
	r := MustSet("rwx", "r")
	x := MustSet("rwx", "x")

	if ok, _ := r.SubsetOf(rw); !ok {
		t.Fatal("r not subset of rw")
	}
	if ok, _ := rw.SubsetOf(r); ok {
		t.Fatal("rw reported subset of r")
	}
	u, err := rw.Union(x)
	if err != nil {
		t.Fatal(err)
	}
	if u.Members() != "rwx" {
		t.Fatalf("union = %q", u.Members())
	}
	in, _ := rw.Intersect(r)
	if in.Members() != "r" {
		t.Fatalf("intersect = %q", in.Members())
	}
	m, _ := rw.Minus(r)
	if m.Members() != "w" {
		t.Fatalf("minus = %q", m.Members())
	}
}

func TestSetAlgebraTypeMismatch(t *testing.T) {
	a := MustSet("rwx", "r")
	b := MustSet("eaf", "e")
	if _, err := a.SubsetOf(b); err == nil {
		t.Fatal("subset across universes allowed")
	}
	if _, err := a.Union(b); err == nil {
		t.Fatal("union across universes allowed")
	}
	if _, err := a.Intersect(b); err == nil {
		t.Fatal("intersect across universes allowed")
	}
	if _, err := a.Minus(b); err == nil {
		t.Fatal("minus across universes allowed")
	}
	if _, err := Int(1).SubsetOf(Int(2)); err == nil {
		t.Fatal("subset on integers allowed")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Int(3), Str("3"), false},
		{Object("uid", "jmb"), Object("uid", "jmb"), true},
		{Object("uid", "jmb"), Object("uid", "rjh"), false},
		{Object("uid", "jmb"), Object("gid", "jmb"), false},
		{MustSet("rwx", "rw"), MustSet("rwx", "rw"), true},
		{MustSet("rwx", "rw"), MustSet("rwx", "r"), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(-42), Int(1 << 40),
		Str(""), Str("hello"), Str("with,comma"), Str(`quo"te`),
		MustSet("rwx", ""), MustSet("rwx", "rwx"),
		Object("Login.userid", "jmb"),
	}
	for _, v := range vals {
		got, err := Unmarshal(v.Marshal())
		if err != nil {
			t.Fatalf("Unmarshal(%q): %v", v.Marshal(), err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %v -> %q -> %v", v, v.Marshal(), got)
		}
	}
}

func TestMarshalArgsRoundTrip(t *testing.T) {
	args := []Value{Int(1), Str("a,b"), MustSet("rwx", "w"), Object("uid", "x")}
	wire := MarshalArgs(args)
	got, err := UnmarshalArgs(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(args) {
		t.Fatalf("got %d args, want %d", len(got), len(args))
	}
	for i := range args {
		if !got[i].Equal(args[i]) {
			t.Fatalf("arg %d: got %v want %v", i, got[i], args[i])
		}
	}
	if empty, err := UnmarshalArgs(""); err != nil || len(empty) != 0 {
		t.Fatalf("UnmarshalArgs(\"\") = %v, %v", empty, err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{"", "x", "i:zz", "s:unquoted", "b:rwx", "b:rwx:zz", "o:noid", "z:1"}
	for _, s := range bad {
		if _, err := Unmarshal(s); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", s)
		}
	}
}

// Property: string marshalling round-trips for arbitrary strings,
// and canonical marshalling means marshalled-equality == Equal.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		v := Str(s)
		got, err := Unmarshal(v.Marshal())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		got, err := Unmarshal(v.Marshal())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMarshalCanonical(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := Str(a), Str(b)
		return (va.Marshal() == vb.Marshal()) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetLaws(t *testing.T) {
	// Subset of union; intersection subset of both.
	f := func(x, y uint8) bool {
		a := Value{T: SetType("abcdefgh"), Set: uint64(x)}
		b := Value{T: SetType("abcdefgh"), Set: uint64(y)}
		u, _ := a.Union(b)
		i, _ := a.Intersect(b)
		sa, _ := a.SubsetOf(u)
		sb, _ := b.SubsetOf(u)
		ia, _ := i.SubsetOf(a)
		ib, _ := i.SubsetOf(b)
		return sa && sb && ia && ib
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvExtendIsPersistent(t *testing.T) {
	e := Env{}
	e2 := e.Extend("x", Int(1))
	e3 := e2.Extend("x", Int(2))
	if _, ok := e["x"]; ok {
		t.Fatal("Extend mutated original env")
	}
	if !e2["x"].Equal(Int(1)) {
		t.Fatal("Extend mutated earlier binding")
	}
	if !e3["x"].Equal(Int(2)) {
		t.Fatal("Extend did not rebind")
	}
}

func TestEnvString(t *testing.T) {
	e := Env{}.Extend("b", Int(2)).Extend("a", Int(1))
	if got, want := e.String(), "{a=1, b=2}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]Type{
		"integer":      IntType,
		"string":       StringType,
		"{rwx}":        SetType("rwx"),
		"Login.userid": ObjectType("Login.userid"),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type.String() = %q, want %q", got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "Integer" || KindSet.String() != "Set" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}
