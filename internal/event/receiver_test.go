package event

import (
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/value"
)

func TestReceiverDispatchByRegistration(t *testing.T) {
	r := NewReceiver(2, nil)
	var got []Event
	r.Handle(7, func(e Event) { got = append(got, e) })
	r.Deliver(Notification{SessionID: 1, Seq: 1, RegID: 7, Event: New("E", value.Int(1))})
	r.Deliver(Notification{SessionID: 1, Seq: 2, RegID: 8, Event: New("E", value.Int(2))})
	if len(got) != 1 || !got[0].Args[0].Equal(value.Int(1)) {
		t.Fatalf("dispatched = %v", got)
	}
}

func TestReceiverDetectsGap(t *testing.T) {
	var gaps []string
	r := NewReceiver(2, func(src string) { gaps = append(gaps, src) })
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 1, Heartbeat: true})
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 3, Heartbeat: true})
	if len(gaps) != 1 || gaps[0] != "s" {
		t.Fatalf("gaps = %v", gaps)
	}
	// A duplicate (resend) is not a gap.
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 3, Heartbeat: true})
	if len(gaps) != 1 {
		t.Fatalf("duplicate counted as gap: %v", gaps)
	}
}

func TestReceiverAcksEveryIth(t *testing.T) {
	r := NewReceiver(3, nil)
	for i := uint64(1); i <= 7; i++ {
		r.Deliver(Notification{Source: "s", SessionID: 1, Seq: i, Heartbeat: true})
	}
	acks := r.TakeAcks()
	if len(acks) != 2 { // after heartbeats 3 and 6
		t.Fatalf("acks = %v", acks)
	}
	if acks[0].Seq != 3 || acks[1].Seq != 6 {
		t.Fatalf("ack seqs = %v", acks)
	}
	if len(r.TakeAcks()) != 0 {
		t.Fatal("TakeAcks did not clear")
	}
}

func TestReceiverHorizonTracking(t *testing.T) {
	r := NewReceiver(2, nil)
	t1 := time.Unix(100, 0)
	t2 := time.Unix(200, 0)
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 1, Horizon: t2, Heartbeat: true})
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 2, Horizon: t1, Heartbeat: true})
	h, ok := r.Horizon("s")
	if !ok || !h.Equal(t2) {
		t.Fatalf("horizon = %v, %v", h, ok)
	}
	if _, ok := r.Horizon("unknown"); ok {
		t.Fatal("unknown source has horizon")
	}
}

func TestReceiverLivenessDetection(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1000, 0))
	r := NewReceiver(2, nil)
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 1, Horizon: clk.Now(), Heartbeat: true})

	// Within the allowance: alive.
	clk.Advance(2 * time.Second)
	if failed := r.CheckLiveness(clk.Now(), 5*time.Second); len(failed) != 0 {
		t.Fatalf("premature failure report: %v", failed)
	}
	// Past the allowance: presumed failed, reported exactly once.
	clk.Advance(10 * time.Second)
	failed := r.CheckLiveness(clk.Now(), 5*time.Second)
	if len(failed) != 1 || failed[0] != "s" {
		t.Fatalf("failed = %v", failed)
	}
	if !r.Silent("s") {
		t.Fatal("source not marked silent")
	}
	if again := r.CheckLiveness(clk.Now(), 5*time.Second); len(again) != 0 {
		t.Fatalf("failure reported twice: %v", again)
	}
	// A fresh heartbeat clears the silence.
	clk.Advance(time.Second)
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 2, Horizon: clk.Now(), Heartbeat: true})
	if r.Silent("s") {
		t.Fatal("source still silent after heartbeat")
	}
}

func TestReceiverSuppressesDuplicates(t *testing.T) {
	// A lossy link may deliver the same notification twice (fault-plane
	// duplication); the payload must be applied once.
	r := NewReceiver(2, nil)
	var got []Event
	r.HandleFrom("s", 7, func(e Event) { got = append(got, e) })
	n := Notification{Source: "s", SessionID: 1, Seq: 5, RegID: 7, Event: New("E", value.Int(1))}
	r.Deliver(n)
	r.Deliver(n)
	if len(got) != 1 {
		t.Fatalf("duplicate dispatched: %d deliveries", len(got))
	}
	// A duplicated heartbeat must not advance the ack cadence either.
	hb := Notification{Source: "s", SessionID: 1, Seq: 6, Heartbeat: true}
	r.Deliver(hb)
	r.Deliver(hb)
	if acks := r.TakeAcks(); len(acks) != 0 {
		t.Fatalf("duplicate heartbeat acked: %v", acks)
	}
}

func TestReceiverSessionsKeyedBySource(t *testing.T) {
	// Two brokers allocate session ids independently; session 1 from
	// source A must not mask session 1 from source B.
	var gaps []string
	r := NewReceiver(2, func(src string) { gaps = append(gaps, src) })
	var got []Event
	r.HandleFrom("A", 1, func(e Event) { got = append(got, e) })
	r.HandleFrom("B", 1, func(e Event) { got = append(got, e) })
	r.Deliver(Notification{Source: "A", SessionID: 1, Seq: 5, RegID: 1, Event: New("E", value.Int(1))})
	// Same session id and a lower seq from a different source: neither a
	// duplicate nor a gap.
	r.Deliver(Notification{Source: "B", SessionID: 1, Seq: 1, RegID: 1, Event: New("E", value.Int(2))})
	if len(got) != 2 {
		t.Fatalf("cross-source collision suppressed delivery: %d", len(got))
	}
	if len(gaps) != 0 {
		t.Fatalf("cross-source collision reported a gap: %v", gaps)
	}
}

func TestReceiverSessionFloor(t *testing.T) {
	r := NewReceiver(2, nil)
	var got []Event
	r.HandleFrom("s", 7, func(e Event) { got = append(got, e) })
	r.SetSessionFloor("s", 1, 10)
	// In-flight notifications at or below the floor are stale.
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 9, RegID: 7, Event: New("E", value.Int(1))})
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 10, RegID: 7, Event: New("E", value.Int(2))})
	if len(got) != 0 {
		t.Fatalf("pre-floor notification dispatched: %d", len(got))
	}
	// Above the floor flows normally.
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 11, RegID: 7, Event: New("E", value.Int(3))})
	if len(got) != 1 || !got[0].Args[0].Equal(value.Int(3)) {
		t.Fatalf("post-floor delivery = %v", got)
	}
	// The floor never regresses the high-water mark.
	r.SetSessionFloor("s", 1, 2)
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 11, RegID: 7, Event: New("E", value.Int(4))})
	if len(got) != 1 {
		t.Fatal("floor regression re-admitted stale seq")
	}
}

func TestReceiverOnRevive(t *testing.T) {
	var revived []string
	r := NewReceiver(2, nil)
	r.OnRevive(func(src string) { revived = append(revived, src) })
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 1, Heartbeat: true})
	if len(revived) != 0 {
		t.Fatalf("revive fired for a live source: %v", revived)
	}
	r.MarkSilent("s")
	if !r.Silent("s") {
		t.Fatal("MarkSilent ineffective")
	}
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 2, Heartbeat: true})
	if len(revived) != 1 || revived[0] != "s" {
		t.Fatalf("revived = %v", revived)
	}
	if r.Silent("s") {
		t.Fatal("delivery did not clear silence")
	}
	// Even a stale duplicate proves the source is alive.
	r.MarkSilent("s")
	r.Deliver(Notification{Source: "s", SessionID: 1, Seq: 2, Heartbeat: true})
	if len(revived) != 2 {
		t.Fatal("stale delivery did not revive")
	}
}

func TestReceiverSources(t *testing.T) {
	r := NewReceiver(2, nil)
	h := time.Unix(100, 0)
	r.Deliver(Notification{Source: "b", SessionID: 1, Seq: 1, Horizon: h, Heartbeat: true})
	r.Deliver(Notification{Source: "a", SessionID: 1, Seq: 1, Horizon: h, Heartbeat: true})
	got := r.Sources()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Sources = %v", got)
	}
}

func TestBrokerSessionSeq(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := NewBroker("s", clk, BrokerOptions{})
	r := NewReceiver(2, nil)
	sess, err := b.OpenSession(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := b.SessionSeq(sess); err != nil || seq != 0 {
		t.Fatalf("fresh session seq = %d, %v", seq, err)
	}
	b.Heartbeat()
	b.Heartbeat()
	if seq, err := b.SessionSeq(sess); err != nil || seq != 2 {
		t.Fatalf("seq after two heartbeats = %d, %v", seq, err)
	}
	if _, err := b.SessionSeq(999); err == nil {
		t.Fatal("unknown session accepted")
	}
}

func TestBrokerReceiverEndToEnd(t *testing.T) {
	// The full figure 6.1 loop: register, signal, dispatch, heartbeat, ack.
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := NewBroker("printer", clk, BrokerOptions{AckEvery: 2})
	r := NewReceiver(2, nil)
	sess, err := b.OpenSession(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := b.Register(sess, NewTemplate("Finished", Lit(value.Int(27))))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Event, 1)
	r.Handle(reg, func(e Event) { done <- e })

	b.Signal(New("Finished", value.Int(27)))
	select {
	case e := <-done:
		if !e.Args[0].Equal(value.Int(27)) {
			t.Fatalf("wrong event %v", e)
		}
	default:
		t.Fatal("event not delivered")
	}

	b.Heartbeat()
	b.Heartbeat()
	acks := r.TakeAcks()
	if len(acks) != 1 {
		t.Fatalf("acks = %v", acks)
	}
	if err := b.Ack(sess, acks[0].Seq); err != nil {
		t.Fatal(err)
	}
	if b.UnackedCount(sess) != 0 {
		t.Fatalf("unacked = %d after ack", b.UnackedCount(sess))
	}
}
