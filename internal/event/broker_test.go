package event

import (
	"errors"
	"sync"
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/value"
)

type capture struct {
	mu sync.Mutex
	ns []Notification
}

func (c *capture) Deliver(n Notification) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ns = append(c.ns, n)
}

func (c *capture) all() []Notification {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Notification(nil), c.ns...)
}

func (c *capture) events() []Event {
	var out []Event
	for _, n := range c.all() {
		if !n.Heartbeat {
			out = append(out, n.Event)
		}
	}
	return out
}

func newTestBroker(t *testing.T, opts BrokerOptions) (*Broker, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(1000, 0))
	return NewBroker("printer", clk, opts), clk
}

func TestRegisterAndNotify(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, err := b.OpenSession(sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := b.Register(sess, NewTemplate("Finished", Lit(value.Int(27))))
	if err != nil {
		t.Fatal(err)
	}
	b.Signal(New("Finished", value.Int(26)))
	b.Signal(New("Finished", value.Int(27)))
	got := sink.events()
	if len(got) != 1 || !got[0].Args[0].Equal(value.Int(27)) {
		t.Fatalf("notifications = %v", got)
	}
	if sink.all()[0].RegID != reg {
		t.Fatal("notification lacks registration id")
	}
	if sink.all()[0].Source != "printer" {
		t.Fatal("notification lacks source")
	}
}

func TestWildcardRegistration(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	if _, err := b.Register(sess, NewTemplate("Finished", Wildcard())); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		b.Signal(New("Finished", value.Int(i)))
	}
	if len(sink.events()) != 5 {
		t.Fatalf("got %d notifications, want 5", len(sink.events()))
	}
}

func TestDeregisterStopsNotification(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	reg, _ := b.Register(sess, NewTemplate("E"))
	b.Signal(New("E"))
	b.Deregister(reg)
	b.Signal(New("E"))
	if len(sink.events()) != 1 {
		t.Fatalf("got %d events, want 1", len(sink.events()))
	}
}

func TestCloseSessionDropsRegistrations(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	if _, err := b.Register(sess, NewTemplate("E")); err != nil {
		t.Fatal(err)
	}
	if err := b.CloseSession(sess); err != nil {
		t.Fatal(err)
	}
	b.Signal(New("E"))
	if len(sink.events()) != 0 {
		t.Fatal("closed session still notified")
	}
	if err := b.CloseSession(sess); !errors.Is(err, ErrNoSession) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := b.Register(sess, NewTemplate("E")); !errors.Is(err, ErrNoSession) {
		t.Fatalf("register on closed session: %v", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	refuse := errors.New("no badge")
	b, _ := newTestBroker(t, BrokerOptions{
		Admission: func(creds any) error {
			if creds == nil {
				return refuse
			}
			return nil
		},
	})
	if _, err := b.OpenSession(&capture{}, nil); !errors.Is(err, refuse) {
		t.Fatalf("admission not applied: %v", err)
	}
	if _, err := b.OpenSession(&capture{}, "cert"); err != nil {
		t.Fatalf("admitted client refused: %v", err)
	}
}

func TestVisibilityFilter(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{
		Visibility: func(sess uint64, creds any, ev Event) bool {
			// Clients may only see even job numbers.
			return ev.Args[0].I%2 == 0
		},
	})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	if _, err := b.Register(sess, NewTemplate("Finished", Wildcard())); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		b.Signal(New("Finished", value.Int(i)))
	}
	got := sink.events()
	if len(got) != 2 {
		t.Fatalf("visibility filter passed %d events, want 2", len(got))
	}
	for _, e := range got {
		if e.Args[0].I%2 != 0 {
			t.Fatalf("odd event leaked: %v", e)
		}
	}
}

func TestMonotoneStampsAndSeq(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	// Virtual clock does not advance: stamps must still be monotone.
	e1 := b.Signal(New("E"))
	e2 := b.Signal(New("E"))
	if !e2.Time.After(e1.Time) {
		t.Fatalf("stamps not monotone: %v then %v", e1.Time, e2.Time)
	}
	if e2.Seq != e1.Seq+1 {
		t.Fatalf("seq not increasing: %d then %d", e1.Seq, e2.Seq)
	}
}

func TestHeartbeatCarriesHorizon(t *testing.T) {
	b, clk := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	if _, err := b.OpenSession(sink, nil); err != nil {
		t.Fatal(err)
	}
	b.Signal(New("E")) // stamps lastStamp
	clk.Advance(10 * time.Second)
	b.Heartbeat()
	ns := sink.all()
	hb := ns[len(ns)-1]
	if !hb.Heartbeat {
		t.Fatal("expected heartbeat notification")
	}
	if hb.Horizon.Before(clk.Now()) {
		t.Fatalf("heartbeat horizon %v earlier than now %v", hb.Horizon, clk.Now())
	}
}

func TestAckTrimsUnacked(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	if _, err := b.Register(sess, NewTemplate("E")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Signal(New("E"))
	}
	if got := b.UnackedCount(sess); got != 5 {
		t.Fatalf("unacked = %d, want 5", got)
	}
	ns := sink.all()
	if err := b.Ack(sess, ns[2].Seq); err != nil {
		t.Fatal(err)
	}
	if got := b.UnackedCount(sess); got != 2 {
		t.Fatalf("unacked after ack = %d, want 2", got)
	}
}

func TestResendRedelivers(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	if _, err := b.Register(sess, NewTemplate("E")); err != nil {
		t.Fatal(err)
	}
	b.Signal(New("E"))
	b.Signal(New("E"))
	before := len(sink.all())
	if err := b.Resend(sess); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.all()); got != before*2 {
		t.Fatalf("resend delivered %d total, want %d", got, before*2)
	}
}

func TestPreRegistrationBuffersNotNotifies(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	if _, err := b.PreRegister(sess, NewTemplate("Seen", Wildcard(), Wildcard())); err != nil {
		t.Fatal(err)
	}
	b.Signal(New("Seen", value.Str("b1"), value.Str("T14")))
	if len(sink.events()) != 0 {
		t.Fatal("pre-registration notified live")
	}
	if b.BufferedCount() != 1 {
		t.Fatalf("buffered %d, want 1", b.BufferedCount())
	}
}

func TestRetrospectiveRegistrationClosesRace(t *testing.T) {
	// The badge-system race of §6.3.3/§6.8.1: events occurring between
	// lookup and registration must not be lost.
	b, clk := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	pre, err := b.PreRegister(sess, NewTemplate("Seen", Wildcard(), Wildcard()))
	if err != nil {
		t.Fatal(err)
	}
	start := clk.Now()

	// Events arrive while the client is still discovering parameters.
	clk.Advance(time.Second)
	b.Signal(New("Seen", value.Str("b1"), value.Str("T14")))
	clk.Advance(time.Second)
	b.Signal(New("Seen", value.Str("b2"), value.Str("T15")))

	// Client now knows it wants badge b1, retrospectively from start.
	narrow := NewTemplate("Seen", Lit(value.Str("b1")), Wildcard())
	if err := b.RetroRegister(pre, narrow, start); err != nil {
		t.Fatal(err)
	}
	got := sink.events()
	if len(got) != 1 || !got[0].Args[0].Equal(value.Str("b1")) {
		t.Fatalf("retrospective delivery = %v", got)
	}
	// And live events flow from now on.
	b.Signal(New("Seen", value.Str("b1"), value.Str("T16")))
	if len(sink.events()) != 2 {
		t.Fatal("live event after retro-registration not delivered")
	}
	b.Signal(New("Seen", value.Str("b2"), value.Str("T16")))
	if len(sink.events()) != 2 {
		t.Fatal("narrowed template leaked other badge")
	}
}

func TestRetroRegisterErrors(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	live, _ := b.Register(sess, NewTemplate("E"))
	if err := b.RetroRegister(live, NewTemplate("E"), time.Unix(0, 0)); err == nil {
		t.Fatal("retro-register accepted a live registration")
	}
	if err := b.RetroRegister(999, NewTemplate("E"), time.Unix(0, 0)); err == nil {
		t.Fatal("retro-register accepted unknown registration")
	}
}

func TestBufferTrimByAgeAndCount(t *testing.T) {
	b, clk := newTestBroker(t, BrokerOptions{RetainFor: 5 * time.Second, RetainMax: 3})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	if _, err := b.PreRegister(sess, NewTemplate("E", Wildcard())); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		b.Signal(New("E", value.Int(i)))
		clk.Advance(time.Second)
	}
	if got := b.BufferedCount(); got > 3 {
		t.Fatalf("buffer holds %d, want <= 3", got)
	}
}

func TestNarrow(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	reg, _ := b.Register(sess, NewTemplate("E", Wildcard()))
	if err := b.Narrow(reg, NewTemplate("E", Lit(value.Int(1)))); err != nil {
		t.Fatal(err)
	}
	b.Signal(New("E", value.Int(2)))
	b.Signal(New("E", value.Int(1)))
	if got := len(sink.events()); got != 1 {
		t.Fatalf("narrowed registration got %d events, want 1", got)
	}
	if err := b.Narrow(999, NewTemplate("E")); err == nil {
		t.Fatal("narrowing unknown registration succeeded")
	}
}

func TestRegisterAndQueryAtomic(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	sink := &capture{}
	sess, _ := b.OpenSession(sink, nil)
	db := []Event{New("OwnsBadge", value.Str("rjh21"), value.Str("b7"))}
	reg, existing, err := b.RegisterAndQuery(sess,
		NewTemplate("OwnsBadge", Lit(value.Str("rjh21")), Wildcard()),
		func() []Event { return db })
	if err != nil {
		t.Fatal(err)
	}
	if reg == 0 || len(existing) != 1 {
		t.Fatalf("reg=%d existing=%v", reg, existing)
	}
	b.Signal(New("OwnsBadge", value.Str("rjh21"), value.Str("b8")))
	if len(sink.events()) != 1 {
		t.Fatal("live update after combined lookup not delivered")
	}
}

func TestSessionCount(t *testing.T) {
	b, _ := newTestBroker(t, BrokerOptions{})
	if b.SessionCount() != 0 {
		t.Fatal("fresh broker has sessions")
	}
	s1, _ := b.OpenSession(&capture{}, nil)
	if _, err := b.OpenSession(&capture{}, nil); err != nil {
		t.Fatal(err)
	}
	if b.SessionCount() != 2 {
		t.Fatal("session count wrong")
	}
	if err := b.CloseSession(s1); err != nil {
		t.Fatal(err)
	}
	if b.SessionCount() != 1 {
		t.Fatal("session count after close wrong")
	}
}

func TestBrokerConcurrentSignalAndRegister(t *testing.T) {
	// The broker is safe under concurrent signalling, registration and
	// acknowledgement (run under -race in CI).
	b, _ := newTestBroker(t, BrokerOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			sink := &capture{}
			sess, err := b.OpenSession(sink, nil)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 20; j++ {
				if _, err := b.Register(sess, NewTemplate("E", Wildcard())); err != nil {
					t.Error(err)
					return
				}
			}
			_ = b.CloseSession(sess)
		}(i)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.Signal(New("E", value.Int(int64(j))))
			}
			b.Heartbeat()
		}(i)
	}
	wg.Wait()
}
