package event

import (
	"fmt"
	"strings"
	"unicode"

	"oasis/internal/value"
)

// This file implements the extended RPC interface definition language of
// §6.2.1: a service interface declares typed operations *and* typed
// events, so existing trading mechanisms can locate event servers and
// parameters pass naturally between the two domains.
//
//	interface Printer {
//	    int Print(string file);
//	    event Finished(int jobno);
//	    event Stalled(int jobno, string reason);
//	}
//
// Preprocessing an interface yields, for each event, a constructor that
// builds a generic event object from typed arguments and a destructor
// that unmarshals an instance back into its arguments (figure 6.1's
// steps 4 and 15). Services with events implicitly support the standard
// registration operations (Register, Deregister, ...), which the Broker
// provides.

// InterfaceDef is a parsed interface definition.
type InterfaceDef struct {
	Name   string
	Ops    []OpDef
	Events []EventDef
}

// OpDef is one RPC operation signature.
type OpDef struct {
	Name   string
	Result value.Type // zero for void
	Params []ParamDef
}

// EventDef is one event type declared by the interface.
type EventDef struct {
	Name   string
	Params []ParamDef
}

// ParamDef is a typed, named parameter.
type ParamDef struct {
	Name string
	Type value.Type
}

// QualifiedName returns the event's wire name, Interface.Event.
func (e EventDef) QualifiedName(iface string) string { return iface + "." + e.Name }

// ParseIDL parses an interface definition.
func ParseIDL(src string) (*InterfaceDef, error) {
	toks := idlScan(src)
	p := &idlParser{toks: toks}
	return p.iface()
}

// MustParseIDL panics on error; for static definitions.
func MustParseIDL(src string) *InterfaceDef {
	d, err := ParseIDL(src)
	if err != nil {
		panic(err)
	}
	return d
}

func idlScan(src string) []string {
	var out []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.ContainsRune("{}();,", rune(c)):
			out = append(out, string(c))
			i++
		default:
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			if j == i {
				out = append(out, string(c))
				i++
				continue
			}
			out = append(out, src[i:j])
			i = j
		}
	}
	return out
}

type idlParser struct {
	toks []string
	pos  int
}

func (p *idlParser) cur() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *idlParser) advance() string {
	t := p.cur()
	p.pos++
	return t
}

func (p *idlParser) expect(s string) error {
	if p.cur() != s {
		return fmt.Errorf("event: idl: expected %q, found %q", s, p.cur())
	}
	p.pos++
	return nil
}

func (p *idlParser) iface() (*InterfaceDef, error) {
	if err := p.expect("interface"); err != nil {
		return nil, err
	}
	name := p.advance()
	if name == "" {
		return nil, fmt.Errorf("event: idl: missing interface name")
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	def := &InterfaceDef{Name: name}
	for p.cur() != "}" && p.cur() != "" {
		if p.cur() == "event" {
			p.advance()
			ev, err := p.eventDef()
			if err != nil {
				return nil, err
			}
			def.Events = append(def.Events, ev)
		} else {
			op, err := p.opDef()
			if err != nil {
				return nil, err
			}
			def.Ops = append(def.Ops, op)
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return def, nil
}

func (p *idlParser) typeOf(tok string) (value.Type, error) {
	switch tok {
	case "int", "integer":
		return value.IntType, nil
	case "string":
		return value.StringType, nil
	case "void":
		return value.Type{}, nil
	default:
		if tok == "" || !unicode.IsLetter(rune(tok[0])) {
			return value.Type{}, fmt.Errorf("event: idl: bad type %q", tok)
		}
		return value.ObjectType(tok), nil
	}
}

func (p *idlParser) params() ([]ParamDef, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []ParamDef
	for p.cur() != ")" && p.cur() != "" {
		t, err := p.typeOf(p.advance())
		if err != nil {
			return nil, err
		}
		name := p.advance()
		if name == "" || name == "," || name == ")" {
			return nil, fmt.Errorf("event: idl: missing parameter name")
		}
		out = append(out, ParamDef{Name: name, Type: t})
		if p.cur() == "," {
			p.advance()
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *idlParser) eventDef() (EventDef, error) {
	name := p.advance()
	if name == "" {
		return EventDef{}, fmt.Errorf("event: idl: missing event name")
	}
	params, err := p.params()
	if err != nil {
		return EventDef{}, err
	}
	if err := p.expect(";"); err != nil {
		return EventDef{}, err
	}
	return EventDef{Name: name, Params: params}, nil
}

func (p *idlParser) opDef() (OpDef, error) {
	res, err := p.typeOf(p.advance())
	if err != nil {
		return OpDef{}, err
	}
	name := p.advance()
	if name == "" {
		return OpDef{}, fmt.Errorf("event: idl: missing operation name")
	}
	params, err := p.params()
	if err != nil {
		return OpDef{}, err
	}
	if err := p.expect(";"); err != nil {
		return OpDef{}, err
	}
	return OpDef{Name: name, Result: res, Params: params}, nil
}

// Event looks up an event definition by name.
func (d *InterfaceDef) Event(name string) (EventDef, bool) {
	for _, e := range d.Events {
		if e.Name == name {
			return e, true
		}
	}
	return EventDef{}, false
}

// Constructor returns the event constructor of figure 6.1 (step 4/10):
// it builds a generic event object from typed arguments, checking types
// against the declaration.
func (d *InterfaceDef) Constructor(eventName string) (func(args ...value.Value) (Event, error), error) {
	ev, ok := d.Event(eventName)
	if !ok {
		return nil, fmt.Errorf("event: interface %s declares no event %s", d.Name, eventName)
	}
	qname := ev.QualifiedName(d.Name)
	return func(args ...value.Value) (Event, error) {
		if len(args) != len(ev.Params) {
			return Event{}, fmt.Errorf("event: %s takes %d arguments, got %d", qname, len(ev.Params), len(args))
		}
		for i, a := range args {
			if !a.T.Equal(ev.Params[i].Type) {
				return Event{}, fmt.Errorf("event: %s argument %s has type %v, expected %v",
					qname, ev.Params[i].Name, a.T, ev.Params[i].Type)
			}
		}
		return New(qname, args...), nil
	}, nil
}

// Destructor returns the event destructor (figure 6.1, step 15): it
// checks the instance's type and returns its arguments.
func (d *InterfaceDef) Destructor(eventName string) (func(Event) ([]value.Value, error), error) {
	ev, ok := d.Event(eventName)
	if !ok {
		return nil, fmt.Errorf("event: interface %s declares no event %s", d.Name, eventName)
	}
	qname := ev.QualifiedName(d.Name)
	return func(e Event) ([]value.Value, error) {
		if e.Name != qname {
			return nil, fmt.Errorf("event: destructor for %s applied to %s", qname, e.Name)
		}
		if len(e.Args) != len(ev.Params) {
			return nil, fmt.Errorf("event: %s instance has %d arguments, expected %d", qname, len(e.Args), len(ev.Params))
		}
		return e.Args, nil
	}, nil
}

// Template builds a registration template for a declared event with the
// given parameters (wildcards, variables or literals), arity-checked.
func (d *InterfaceDef) Template(eventName string, params ...Param) (Template, error) {
	ev, ok := d.Event(eventName)
	if !ok {
		return Template{}, fmt.Errorf("event: interface %s declares no event %s", d.Name, eventName)
	}
	if len(params) != len(ev.Params) {
		return Template{}, fmt.Errorf("event: %s takes %d parameters, got %d", ev.Name, len(ev.Params), len(params))
	}
	return Template{Name: ev.QualifiedName(d.Name), Params: params}, nil
}
