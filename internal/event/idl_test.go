package event

import (
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/value"
)

// printerIDL is the §6.2.1 print-server interface.
const printerIDL = `
interface Printer {
    int Print(string file);      // submit a job
    void Cancel(int jobno);
    event Finished(int jobno);
    event Stalled(int jobno, string reason);
}
`

func TestParseIDL(t *testing.T) {
	d, err := ParseIDL(printerIDL)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "Printer" {
		t.Fatalf("name = %q", d.Name)
	}
	if len(d.Ops) != 2 || len(d.Events) != 2 {
		t.Fatalf("ops=%d events=%d", len(d.Ops), len(d.Events))
	}
	if d.Ops[0].Name != "Print" || d.Ops[0].Result.Kind != value.KindInt ||
		d.Ops[0].Params[0].Name != "file" || d.Ops[0].Params[0].Type.Kind != value.KindString {
		t.Fatalf("op = %+v", d.Ops[0])
	}
	if d.Ops[1].Result.Kind != 0 {
		t.Fatalf("void result = %+v", d.Ops[1].Result)
	}
	ev, ok := d.Event("Stalled")
	if !ok || len(ev.Params) != 2 || ev.Params[1].Name != "reason" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestParseIDLErrors(t *testing.T) {
	bad := []string{
		``,
		`interface {`,
		`interface P { int Print( }`,
		`interface P { event E(int) ; }`,      // missing param name
		`interface P { int Print(string f) }`, // missing semicolon
		`iface P {}`,
	}
	for _, src := range bad {
		if _, err := ParseIDL(src); err == nil {
			t.Errorf("ParseIDL(%q) succeeded", src)
		}
	}
}

func TestConstructorDestructorRoundTrip(t *testing.T) {
	d := MustParseIDL(printerIDL)
	mk, err := d.Constructor("Finished")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := mk(value.Int(27))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Name != "Printer.Finished" {
		t.Fatalf("name = %q", ev.Name)
	}
	un, err := d.Destructor("Finished")
	if err != nil {
		t.Fatal(err)
	}
	args, err := un(ev)
	if err != nil || !args[0].Equal(value.Int(27)) {
		t.Fatalf("destructed = %v, %v", args, err)
	}
}

func TestConstructorTypeChecks(t *testing.T) {
	d := MustParseIDL(printerIDL)
	mk, _ := d.Constructor("Finished")
	if _, err := mk(value.Str("27")); err == nil {
		t.Fatal("wrong argument type accepted")
	}
	if _, err := mk(); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := d.Constructor("Nothing"); err == nil {
		t.Fatal("unknown event constructor")
	}
}

func TestDestructorRejectsWrongType(t *testing.T) {
	d := MustParseIDL(printerIDL)
	un, _ := d.Destructor("Finished")
	if _, err := un(New("Printer.Stalled", value.Int(1), value.Str("jam"))); err == nil {
		t.Fatal("destructor accepted a different event type")
	}
	if _, err := un(New("Printer.Finished")); err == nil {
		t.Fatal("destructor accepted wrong arity")
	}
	if _, err := d.Destructor("Nothing"); err == nil {
		t.Fatal("unknown event destructor")
	}
}

func TestPrintServerLifecycle(t *testing.T) {
	// E13 / figure 6.1 with IDL-generated pieces: submit a job, register
	// for its completion using a template built from the interface,
	// signal via the constructor, decode via the destructor.
	d := MustParseIDL(printerIDL)
	clk := clock.NewVirtual(time.Unix(0, 0))
	broker := NewBroker("P", clk, BrokerOptions{})

	recv := NewReceiver(4, nil)
	sess, err := broker.OpenSession(recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	jobno := int64(27) // returned by the Print RPC in the figure
	tmpl, err := d.Template("Finished", Lit(value.Int(jobno)))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := broker.Register(sess, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	var doneJob int64 = -1
	un, _ := d.Destructor("Finished")
	recv.Handle(reg, func(e Event) {
		args, err := un(e)
		if err != nil {
			t.Errorf("destructor: %v", err)
			return
		}
		doneJob = args[0].I
	})

	mk, _ := d.Constructor("Finished")
	other, _ := mk(value.Int(99))
	broker.Signal(other) // someone else's job: filtered by the template
	if doneJob != -1 {
		t.Fatal("notified of another job")
	}
	mine, _ := mk(value.Int(jobno))
	broker.Signal(mine)
	if doneJob != jobno {
		t.Fatalf("doneJob = %d", doneJob)
	}
}

func TestTemplateArityChecked(t *testing.T) {
	d := MustParseIDL(printerIDL)
	if _, err := d.Template("Finished", Wildcard(), Wildcard()); err == nil {
		t.Fatal("wrong template arity accepted")
	}
	if _, err := d.Template("Nothing"); err == nil {
		t.Fatal("unknown event template accepted")
	}
}
