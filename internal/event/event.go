// Package event implements the OASIS event architecture of chapter 6 of
// the paper: typed, parametrised events; event templates with wild-card
// and variable parameters (query by example); client registration and
// notification; pre-registration and retrospective registration
// (section 6.8.1); and the heartbeat protocol with event-horizon
// timestamps that underpins failure detection (sections 4.10 and 6.8.2).
package event

import (
	"fmt"
	"strings"
	"time"

	"oasis/internal/value"
)

// Event is a generic event object: a named, parametrised occurrence
// signalled by an event server (glossary). The representation is type and
// machine independent; concrete event types provide constructors and
// destructors over it (section 6.2.1).
type Event struct {
	Name   string        // event type, e.g. "Printer.Finished"
	Source string        // instance of the issuing service
	Args   []value.Value // typed, marshalled-comparable arguments
	Time   time.Time     // occurrence timestamp at the source
	Seq    uint64        // per-source sequence number (section 4.10)
}

// String renders the event for logs and tests.
func (e Event) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)@%d", e.Name, strings.Join(parts, ","), e.Time.UnixNano())
}

// New constructs a generic event object; Source, Time and Seq are filled
// in by the signalling broker.
func New(name string, args ...value.Value) Event {
	return Event{Name: name, Args: args}
}

// Param is one parameter position of a Template: a wildcard, a variable
// to be bound during matching, or a literal.
type Param struct {
	Wild bool
	Var  string
	Lit  value.Value
}

// Wildcard is the "*" parameter.
func Wildcard() Param { return Param{Wild: true} }

// Var names a variable parameter; it matches anything if unbound in the
// environment, and must equal its binding otherwise.
func Var(name string) Param { return Param{Var: name} }

// Lit is a literal parameter that must match exactly.
func Lit(v value.Value) Param { return Param{Lit: v} }

// Template is an event specification, possibly with wild-card or
// variable parameters (glossary: event template; cf. query by example).
type Template struct {
	Name   string
	Params []Param
}

// NewTemplate builds a template.
func NewTemplate(name string, params ...Param) Template {
	return Template{Name: name, Params: params}
}

// String renders the template.
func (t Template) String() string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		switch {
		case p.Wild:
			parts[i] = "*"
		case p.Var != "":
			parts[i] = p.Var
		default:
			parts[i] = p.Lit.String()
		}
	}
	return fmt.Sprintf("%s(%s)", t.Name, strings.Join(parts, ","))
}

// Match reports whether the event matches the template under env, per
// section 6.5: a base event matches if it has the template's type and
// each template parameter is a wildcard, an equal literal, a variable
// unbound in env, or a variable bound in env to an equal value. On match
// it returns env extended with all newly bound variables.
func (t Template) Match(e Event, env value.Env) (value.Env, bool) {
	if t.Name != e.Name || len(t.Params) != len(e.Args) {
		return nil, false
	}
	out := env
	for i, p := range t.Params {
		arg := e.Args[i]
		switch {
		case p.Wild:
			// matches anything, binds nothing
		case p.Var != "":
			if bound, ok := out[p.Var]; ok {
				if !bound.Equal(arg) {
					return nil, false
				}
			} else {
				out = out.Extend(p.Var, arg)
			}
		default:
			if !p.Lit.Equal(arg) {
				return nil, false
			}
		}
	}
	return out, true
}

// Matches is Match with an empty environment, discarding bindings.
func (t Template) Matches(e Event) bool {
	_, ok := t.Match(e, value.Env{})
	return ok
}

// Ground reports whether the template has no wildcards and all variables
// are bound in env; a ground template can be compared against a concrete
// event without producing new bindings.
func (t Template) Ground(env value.Env) bool {
	for _, p := range t.Params {
		if p.Wild {
			return false
		}
		if p.Var != "" {
			if _, ok := env[p.Var]; !ok {
				return false
			}
		}
	}
	return true
}

// Instantiate substitutes env bindings into variable parameters, leaving
// unbound variables in place. Used when registering interest: the merged
// template restricts notification to truly interesting events (§6.7).
func (t Template) Instantiate(env value.Env) Template {
	out := Template{Name: t.Name, Params: make([]Param, len(t.Params))}
	for i, p := range t.Params {
		if p.Var != "" {
			if v, ok := env[p.Var]; ok {
				out.Params[i] = Lit(v)
				continue
			}
		}
		out.Params[i] = p
	}
	return out
}
