package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/value"
)

// seqCheckSink asserts the §4.10 per-session contract under concurrency:
// a sequence number above the high-water mark must extend it by exactly
// one — first deliveries arrive in order with no gaps. Numbers at or
// below the mark are redeliveries (the churner calls Resend), which the
// protocol permits.
type seqCheckSink struct {
	t    *testing.T
	mu   sync.Mutex
	last uint64
	got  int
}

func (s *seqCheckSink) Deliver(n Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n.Seq > s.last {
		if n.Seq != s.last+1 {
			s.t.Errorf("session %d: seq %d after %d (gap)", n.SessionID, n.Seq, s.last)
		}
		s.last = n.Seq
	}
	s.got++
}

// TestBrokerConcurrentLifecycle hammers every broker entry point from
// concurrent goroutines. Run under -race; the assertions are the
// per-session ordering contract and the absence of panics or deadlocks.
func TestBrokerConcurrentLifecycle(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := NewBroker("S", clk, BrokerOptions{})
	tmpl := NewTemplate("Modified", Lit(value.Str("r1")), Wildcard())

	var churnWG sync.WaitGroup
	done := make(chan struct{})
	const churners = 4
	for i := 0; i < churners; i++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for j := 0; j < 150; j++ {
				sink := &seqCheckSink{t: t}
				sess, err := b.OpenSession(sink, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := b.Register(sess, tmpl); err != nil {
					t.Error(err)
					return
				}
				if j%3 == 0 {
					// Wildcard registration on the same session: two
					// registrations may match one Signal.
					if _, err := b.Register(sess, NewTemplate("Modified", Wildcard(), Wildcard())); err != nil {
						t.Error(err)
						return
					}
				}
				_ = b.Ack(sess, 0)
				_ = b.Resend(sess)
				if err := b.CloseSession(sess); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	go func() { churnWG.Wait(); close(done) }()

	var helperWG sync.WaitGroup
	var signalled atomic.Int64
	running := func(k int) bool {
		// A floor of iterations guarantees overlap even if the session
		// churn finishes before these goroutines are scheduled.
		if k < 100 {
			return true
		}
		select {
		case <-done:
			return false
		default:
			return true
		}
	}
	for i := 0; i < 2; i++ {
		helperWG.Add(1)
		go func() {
			defer helperWG.Done()
			for k := 0; running(k); k++ {
				b.Signal(New("Modified", value.Str("r1"), value.Int(1)))
				signalled.Add(1)
			}
		}()
	}
	helperWG.Add(1)
	go func() {
		defer helperWG.Done()
		for k := 0; running(k); k++ {
			b.Heartbeat()
		}
	}()
	<-done
	helperWG.Wait()
	if b.SessionCount() != 0 {
		t.Fatalf("SessionCount = %d after all sessions closed", b.SessionCount())
	}
	if signalled.Load() == 0 {
		t.Fatal("signal goroutines never ran")
	}
}
