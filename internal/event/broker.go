package event

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"oasis/internal/clock"
	"oasis/internal/value"
)

// Notification is the unit of delivery from a broker to a client session.
// Every notification carries a per-session sequence number, so the client
// can detect loss, and an event-horizon timestamp: a lower bound on the
// timestamps of events yet to be signalled by this source (§6.8.2).
type Notification struct {
	Source    string
	SessionID uint64
	Seq       uint64 // per-session sequence number (§4.10)
	Heartbeat bool   // true for pure heartbeats carrying no event
	RegID     uint64 // registration that matched (0 for heartbeats)
	Event     Event
	Horizon   time.Time
}

// Sink receives notifications on behalf of a client. Delivery transports
// (in-process, TCP) implement this; they may drop or delay, which the
// heartbeat protocol is designed to detect.
type Sink interface {
	Deliver(Notification)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Notification)

// Deliver implements Sink.
func (f SinkFunc) Deliver(n Notification) { f(n) }

// AdmissionFunc decides whether a client presenting the given opaque
// credentials may open a session (admission control, chapter 7). A nil
// AdmissionFunc admits everyone.
type AdmissionFunc func(credentials any) error

// VisibilityFunc decides whether a particular event instance may be
// notified to a particular session (per-instance policy, chapter 7).
// A nil VisibilityFunc makes every instance visible.
type VisibilityFunc func(session uint64, credentials any, ev Event) bool

// ErrNoSession is returned for operations on unknown or closed sessions.
var ErrNoSession = errors.New("event: no such session")

// BrokerOptions tune a broker's failure-detection and buffering
// behaviour; the paper stresses that each service chooses its own
// trade-offs (§4.10, §6.8.1).
type BrokerOptions struct {
	// HeartbeatEvery is the maximum quiet period t: the broker promises a
	// message at least this often (0 disables automatic heartbeats; the
	// owner then calls Heartbeat explicitly, as the simulations do).
	HeartbeatEvery time.Duration
	// AckEvery is i: the client should acknowledge every i-th heartbeat.
	AckEvery int
	// RetainFor bounds how long pre-registration buffers event
	// occurrences before discarding them (§6.8.1).
	RetainFor time.Duration
	// RetainMax bounds the number of buffered occurrences.
	RetainMax int
	// Admission and Visibility install security policy hooks.
	Admission  AdmissionFunc
	Visibility VisibilityFunc
}

type registration struct {
	id       uint64
	session  uint64
	template Template
	pre      bool // pre-registration: buffer, do not notify (§6.8.1)
}

type session struct {
	id          uint64
	sink        Sink
	credentials any
	nextSeq     uint64
	unacked     []Notification // kept until acknowledged, for resend
	closed      bool
}

type buffered struct {
	ev    Event
	added time.Time
}

// Broker is the server-side event library of figure 6.1: it keeps a
// database of registrations, matches signalled events against them
// without knowing concrete event types, and notifies interested clients.
type Broker struct {
	name string
	clk  clock.Clock
	opts BrokerOptions

	mu        sync.Mutex
	sessions  map[uint64]*session
	regs      map[uint64]*registration
	nextSess  uint64
	nextReg   uint64
	eventSeq  uint64
	buffer    []buffered // recent occurrences for retrospective registration
	lastStamp time.Time
}

// NewBroker creates an event broker for the named service instance.
func NewBroker(name string, clk clock.Clock, opts BrokerOptions) *Broker {
	if opts.AckEvery <= 0 {
		opts.AckEvery = 4
	}
	if opts.RetainMax <= 0 {
		opts.RetainMax = 4096
	}
	if opts.RetainFor <= 0 {
		opts.RetainFor = time.Minute
	}
	return &Broker{
		name:     name,
		clk:      clk,
		opts:     opts,
		sessions: make(map[uint64]*session),
		regs:     make(map[uint64]*registration),
	}
}

// Name returns the broker's service-instance name.
func (b *Broker) Name() string { return b.name }

// OpenSession establishes a client session, applying admission control to
// the supplied credentials (§6.2.2). It returns the session identifier.
func (b *Broker) OpenSession(sink Sink, credentials any) (uint64, error) {
	if b.opts.Admission != nil {
		if err := b.opts.Admission(credentials); err != nil {
			return 0, fmt.Errorf("event: admission refused: %w", err)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSess++
	b.sessions[b.nextSess] = &session{id: b.nextSess, sink: sink, credentials: credentials}
	return b.nextSess, nil
}

// CloseSession ends a session and drops its registrations.
func (b *Broker) CloseSession(id uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.sessions[id]
	if !ok {
		return ErrNoSession
	}
	s.closed = true
	delete(b.sessions, id)
	for rid, r := range b.regs {
		if r.session == id {
			delete(b.regs, rid)
		}
	}
	return nil
}

// Register records live interest in events matching the template and
// returns a registration id used to correlate notifications.
func (b *Broker) Register(sess uint64, t Template) (uint64, error) {
	return b.register(sess, t, false)
}

// PreRegister records interest in events the client may later want
// retrospectively (§6.8.1): matching occurrences are buffered at the
// source but not notified.
func (b *Broker) PreRegister(sess uint64, t Template) (uint64, error) {
	return b.register(sess, t, true)
}

func (b *Broker) register(sess uint64, t Template, pre bool) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.sessions[sess]; !ok {
		return 0, ErrNoSession
	}
	b.nextReg++
	b.regs[b.nextReg] = &registration{id: b.nextReg, session: sess, template: t, pre: pre}
	return b.nextReg, nil
}

// Narrow replaces a registration's template with a more specific one as
// parameters become known (§6.8.1). The caller is responsible for the new
// template actually being narrower.
func (b *Broker) Narrow(regID uint64, t Template) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.regs[regID]
	if !ok {
		return fmt.Errorf("event: no registration %d", regID)
	}
	r.template = t
	return nil
}

// RetroRegister converts a pre-registration into a live registration
// starting at the instant `since` in the past: buffered occurrences with
// timestamps in (since, now] that match the (possibly narrowed) template
// are notified immediately, and subsequent occurrences flow live
// (retrospective registration, §6.8.1).
func (b *Broker) RetroRegister(regID uint64, t Template, since time.Time) error {
	b.mu.Lock()
	r, ok := b.regs[regID]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("event: no registration %d", regID)
	}
	if !r.pre {
		b.mu.Unlock()
		return fmt.Errorf("event: registration %d is not a pre-registration", regID)
	}
	r.template = t
	r.pre = false
	s := b.sessions[r.session]
	var pending []Notification
	for _, buf := range b.buffer {
		if buf.ev.Time.After(since) && t.Matches(buf.ev) && b.visible(s, buf.ev) {
			pending = append(pending, b.prepareLocked(s, r.id, buf.ev, false))
		}
	}
	sink := s.sink
	b.mu.Unlock()
	for _, n := range pending {
		sink.Deliver(n)
	}
	return nil
}

// Deregister removes a registration.
func (b *Broker) Deregister(regID uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.regs, regID)
}

func (b *Broker) visible(s *session, ev Event) bool {
	if b.opts.Visibility == nil {
		return true
	}
	return b.opts.Visibility(s.id, s.credentials, ev)
}

// prepareLocked builds a notification and records it as unacknowledged.
func (b *Broker) prepareLocked(s *session, regID uint64, ev Event, hb bool) Notification {
	s.nextSeq++
	n := Notification{
		Source:    b.name,
		SessionID: s.id,
		Seq:       s.nextSeq,
		Heartbeat: hb,
		RegID:     regID,
		Event:     ev,
		Horizon:   b.horizonLocked(),
	}
	s.unacked = append(s.unacked, n)
	return n
}

// horizonLocked returns the broker's event-horizon timestamp: a lower
// bound on timestamps of future notifications. Events are stamped with a
// monotone clock reading, so the last stamp is such a bound.
func (b *Broker) horizonLocked() time.Time {
	now := b.clk.Now()
	if now.After(b.lastStamp) {
		return now
	}
	return b.lastStamp
}

// Signal stamps and signals an event: it is buffered for matching
// pre-registrations and delivered to every live registration whose
// template matches and whose session may see it.
func (b *Broker) Signal(ev Event) Event {
	b.mu.Lock()
	ev.Source = b.name
	now := b.clk.Now()
	if !now.After(b.lastStamp) {
		// Guarantee monotone per-source stamps so horizons are honest.
		now = b.lastStamp.Add(time.Nanosecond)
	}
	b.lastStamp = now
	ev.Time = now
	b.eventSeq++
	ev.Seq = b.eventSeq
	return b.dispatchLocked(ev)
}

// SignalAt signals an event with an explicit occurrence time, used by
// sources (such as badge sensors) that timestamp at detection. Stamps
// must be monotone per source; non-monotone stamps are nudged forward.
func (b *Broker) SignalAt(ev Event, at time.Time) Event {
	b.mu.Lock()
	ev.Source = b.name
	if !at.After(b.lastStamp) {
		at = b.lastStamp.Add(time.Nanosecond)
	}
	b.lastStamp = at
	ev.Time = at
	b.eventSeq++
	ev.Seq = b.eventSeq
	return b.dispatchLocked(ev)
}

func (b *Broker) dispatchLocked(ev Event) Event {
	// Buffer for retrospective registration if any pre-registration
	// matches, trimming by age and count (§6.8.1).
	shouldBuffer := false
	for _, r := range b.regs {
		if r.pre && r.template.Matches(ev) {
			shouldBuffer = true
			break
		}
	}
	if shouldBuffer {
		b.buffer = append(b.buffer, buffered{ev: ev, added: ev.Time})
		b.trimBufferLocked(ev.Time)
	}

	type delivery struct {
		sink Sink
		n    Notification
	}
	var out []delivery
	for _, r := range b.regs {
		if r.pre || !r.template.Matches(ev) {
			continue
		}
		s, ok := b.sessions[r.session]
		if !ok || !b.visible(s, ev) {
			continue
		}
		out = append(out, delivery{s.sink, b.prepareLocked(s, r.id, ev, false)})
	}
	b.mu.Unlock()
	for _, d := range out {
		d.sink.Deliver(d.n)
	}
	return ev
}

func (b *Broker) trimBufferLocked(now time.Time) {
	cutoff := now.Add(-b.opts.RetainFor)
	i := 0
	for i < len(b.buffer) && b.buffer[i].added.Before(cutoff) {
		i++
	}
	if over := len(b.buffer) - i - b.opts.RetainMax; over > 0 {
		i += over
	}
	if i > 0 {
		b.buffer = append([]buffered(nil), b.buffer[i:]...)
	}
}

// Heartbeat asserts the broker's liveness to every open session: each
// receives a heartbeat notification carrying the current event horizon
// (§4.10). The owner calls this every t seconds (or wires it to a timer).
func (b *Broker) Heartbeat() {
	b.mu.Lock()
	type delivery struct {
		sink Sink
		n    Notification
	}
	out := make([]delivery, 0, len(b.sessions))
	for _, s := range b.sessions {
		out = append(out, delivery{s.sink, b.prepareLocked(s, 0, Event{}, true)})
	}
	b.mu.Unlock()
	for _, d := range out {
		d.sink.Deliver(d.n)
	}
}

// Ack acknowledges receipt of every notification up to and including seq
// on the session, letting the broker delete resend state (§4.10).
func (b *Broker) Ack(sess, seq uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.sessions[sess]
	if !ok {
		return ErrNoSession
	}
	i := 0
	for i < len(s.unacked) && s.unacked[i].Seq <= seq {
		i++
	}
	s.unacked = append([]Notification(nil), s.unacked[i:]...)
	return nil
}

// Resend redelivers every unacknowledged notification on the session;
// the broker does this when the client reports a gap or reconnects.
func (b *Broker) Resend(sess uint64) error {
	b.mu.Lock()
	s, ok := b.sessions[sess]
	if !ok {
		b.mu.Unlock()
		return ErrNoSession
	}
	pending := append([]Notification(nil), s.unacked...)
	sink := s.sink
	b.mu.Unlock()
	for _, n := range pending {
		sink.Deliver(n)
	}
	return nil
}

// UnackedCount reports resend state held for a session (for tests and
// the background-traffic experiment E6).
func (b *Broker) UnackedCount(sess uint64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.sessions[sess]
	if !ok {
		return 0
	}
	return len(s.unacked)
}

// SessionCount reports the number of open sessions.
func (b *Broker) SessionCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sessions)
}

// BufferedCount reports the number of occurrences held for retrospective
// registration.
func (b *Broker) BufferedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buffer)
}

// Lookup support: some services (the Namer's active database, §6.3.3)
// need an atomic combined lookup-and-register. The broker provides the
// primitive: RegisterAndQuery registers the template live and, under the
// same lock, returns the result of the caller's query function, so no
// update can slip between the two.
func (b *Broker) RegisterAndQuery(sess uint64, t Template, query func() []Event) (uint64, []Event, error) {
	b.mu.Lock()
	if _, ok := b.sessions[sess]; !ok {
		b.mu.Unlock()
		return 0, nil, ErrNoSession
	}
	b.nextReg++
	id := b.nextReg
	b.regs[id] = &registration{id: id, session: sess, template: t}
	existing := query()
	b.mu.Unlock()
	return id, existing, nil
}

// EnvMatch is a convenience for composite-event evaluators: it matches
// the event against the template under env via Template.Match.
func EnvMatch(t Template, e Event, env value.Env) (value.Env, bool) {
	return t.Match(e, env)
}
