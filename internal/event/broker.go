package event

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"oasis/internal/clock"
	"oasis/internal/value"
)

// Notification is the unit of delivery from a broker to a client session.
// Every notification carries a per-session sequence number, so the client
// can detect loss, and an event-horizon timestamp: a lower bound on the
// timestamps of events yet to be signalled by this source (§6.8.2).
type Notification struct {
	Source    string
	SessionID uint64
	Seq       uint64 // per-session sequence number (§4.10)
	Heartbeat bool   // true for pure heartbeats carrying no event
	RegID     uint64 // registration that matched (0 for heartbeats)
	Event     Event
	Horizon   time.Time
	// Coalesced counts earlier notifications on this session that this
	// one subsumes: a batching transport that collapses a run of
	// superseded notifications (bus.CoalesceRule) reports the collapsed
	// run here, so sequence numbers (Seq-Coalesced .. Seq) all count as
	// received and loss detection (§4.10) stays exact.
	Coalesced uint64
}

// Sink receives notifications on behalf of a client. Delivery transports
// (in-process, TCP) implement this; they may drop or delay, which the
// heartbeat protocol is designed to detect.
type Sink interface {
	Deliver(Notification)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Notification)

// Deliver implements Sink.
func (f SinkFunc) Deliver(n Notification) { f(n) }

// AdmissionFunc decides whether a client presenting the given opaque
// credentials may open a session (admission control, chapter 7). A nil
// AdmissionFunc admits everyone.
type AdmissionFunc func(credentials any) error

// VisibilityFunc decides whether a particular event instance may be
// notified to a particular session (per-instance policy, chapter 7).
// A nil VisibilityFunc makes every instance visible.
type VisibilityFunc func(session uint64, credentials any, ev Event) bool

// ErrNoSession is returned for operations on unknown or closed sessions.
var ErrNoSession = errors.New("event: no such session")

// BrokerOptions tune a broker's failure-detection and buffering
// behaviour; the paper stresses that each service chooses its own
// trade-offs (§4.10, §6.8.1).
type BrokerOptions struct {
	// HeartbeatEvery is the maximum quiet period t: the broker promises a
	// message at least this often (0 disables automatic heartbeats; the
	// owner then calls Heartbeat explicitly, as the simulations do).
	HeartbeatEvery time.Duration
	// AckEvery is i: the client should acknowledge every i-th heartbeat.
	AckEvery int
	// RetainFor bounds how long pre-registration buffers event
	// occurrences before discarding them (§6.8.1).
	RetainFor time.Duration
	// RetainMax bounds the number of buffered occurrences.
	RetainMax int
	// Admission and Visibility install security policy hooks.
	Admission  AdmissionFunc
	Visibility VisibilityFunc
}

type registration struct {
	id       uint64
	session  uint64
	template Template
	pre      bool   // pre-registration: buffer, do not notify (§6.8.1)
	key      string // current index key (maintained under Broker.mu)
}

// session is one client's delivery stream. The broker-wide lock guards
// only the session table; per-stream state (sequence numbers, resend
// buffer, outbound queue) sits behind the session's own mutex so that
// concurrent Signal and Heartbeat calls serialise per session, not per
// broker.
type session struct {
	id          uint64
	sink        Sink
	credentials any

	mu       sync.Mutex
	nextSeq  uint64
	unacked  []Notification // kept until acknowledged, for resend
	outbox   []Notification // prepared, not yet handed to the sink
	draining bool           // a goroutine is flushing outbox in order
	closed   bool
}

type buffered struct {
	ev    Event
	added time.Time
}

// Broker is the server-side event library of figure 6.1: it keeps a
// database of registrations, matches signalled events against them
// without knowing concrete event types, and notifies interested clients.
//
// Concurrency: the registration/session tables are read-mostly and sit
// behind an RWMutex; Signal and Heartbeat take only the read lock to
// snapshot their targets and deliver outside it. Event stamps and the
// source sequence live behind their own small mutex, and per-session
// sequence numbers are assigned under the session lock with delivery
// draining in assignment order, preserving the §4.10 loss-detection
// contract. Registrations are indexed by event name — and, when the
// template's first parameter is a literal, by (name, literal) — so
// Signal matches only candidate registrations instead of scanning the
// whole database.
//
// Lock order: Broker.mu before session.mu before nothing; stampMu is a
// leaf. Sinks are always invoked with no broker or session lock held.
type Broker struct {
	name string
	clk  clock.Clock
	opts BrokerOptions

	mu       sync.RWMutex
	sessions map[uint64]*session
	regs     map[uint64]*registration
	index    map[string]map[uint64]*registration // indexKey -> regs
	nextSess uint64
	nextReg  uint64
	buffer   []buffered // recent occurrences for retrospective registration

	stampMu   sync.Mutex // guards eventSeq and lastStamp
	eventSeq  uint64
	lastStamp time.Time
}

// NewBroker creates an event broker for the named service instance.
func NewBroker(name string, clk clock.Clock, opts BrokerOptions) *Broker {
	if opts.AckEvery <= 0 {
		opts.AckEvery = 4
	}
	if opts.RetainMax <= 0 {
		opts.RetainMax = 4096
	}
	if opts.RetainFor <= 0 {
		opts.RetainFor = time.Minute
	}
	return &Broker{
		name:     name,
		clk:      clk,
		opts:     opts,
		sessions: make(map[uint64]*session),
		regs:     make(map[uint64]*registration),
		index:    make(map[string]map[uint64]*registration),
	}
}

// Name returns the broker's service-instance name.
func (b *Broker) Name() string { return b.name }

// indexKey computes the index bucket for a template: the event name,
// refined by the first parameter when it is a literal (the shape of the
// §4.9.2 Modified templates, which are literal in the record ref). Two
// values that render equally share a bucket; Template.Matches still
// decides, so collisions cost a comparison, never a missed match.
func indexKey(t Template) string {
	if len(t.Params) > 0 {
		p := t.Params[0]
		if !p.Wild && p.Var == "" {
			return t.Name + "\x00" + p.Lit.String()
		}
	}
	return t.Name
}

// indexAddLocked and indexRemoveLocked maintain the candidate index;
// caller holds b.mu for writing.
func (b *Broker) indexAddLocked(r *registration) {
	r.key = indexKey(r.template)
	bucket := b.index[r.key]
	if bucket == nil {
		bucket = make(map[uint64]*registration)
		b.index[r.key] = bucket
	}
	bucket[r.id] = r
}

func (b *Broker) indexRemoveLocked(r *registration) {
	if bucket, ok := b.index[r.key]; ok {
		delete(bucket, r.id)
		if len(bucket) == 0 {
			delete(b.index, r.key)
		}
	}
}

// OpenSession establishes a client session, applying admission control to
// the supplied credentials (§6.2.2). It returns the session identifier.
func (b *Broker) OpenSession(sink Sink, credentials any) (uint64, error) {
	if b.opts.Admission != nil {
		if err := b.opts.Admission(credentials); err != nil {
			return 0, fmt.Errorf("event: admission refused: %w", err)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSess++
	b.sessions[b.nextSess] = &session{id: b.nextSess, sink: sink, credentials: credentials}
	return b.nextSess, nil
}

// CloseSession ends a session and drops its registrations.
func (b *Broker) CloseSession(id uint64) error {
	b.mu.Lock()
	s, ok := b.sessions[id]
	if !ok {
		b.mu.Unlock()
		return ErrNoSession
	}
	delete(b.sessions, id)
	for rid, r := range b.regs {
		if r.session == id {
			b.indexRemoveLocked(r)
			delete(b.regs, rid)
		}
	}
	b.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Register records live interest in events matching the template and
// returns a registration id used to correlate notifications.
func (b *Broker) Register(sess uint64, t Template) (uint64, error) {
	return b.register(sess, t, false)
}

// PreRegister records interest in events the client may later want
// retrospectively (§6.8.1): matching occurrences are buffered at the
// source but not notified.
func (b *Broker) PreRegister(sess uint64, t Template) (uint64, error) {
	return b.register(sess, t, true)
}

func (b *Broker) register(sess uint64, t Template, pre bool) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.sessions[sess]; !ok {
		return 0, ErrNoSession
	}
	b.nextReg++
	r := &registration{id: b.nextReg, session: sess, template: t, pre: pre}
	b.regs[b.nextReg] = r
	b.indexAddLocked(r)
	return b.nextReg, nil
}

// Narrow replaces a registration's template with a more specific one as
// parameters become known (§6.8.1). The caller is responsible for the new
// template actually being narrower.
func (b *Broker) Narrow(regID uint64, t Template) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.regs[regID]
	if !ok {
		return fmt.Errorf("event: no registration %d", regID)
	}
	b.indexRemoveLocked(r)
	r.template = t
	b.indexAddLocked(r)
	return nil
}

// RetroRegister converts a pre-registration into a live registration
// starting at the instant `since` in the past: buffered occurrences with
// timestamps in (since, now] that match the (possibly narrowed) template
// are notified immediately, and subsequent occurrences flow live
// (retrospective registration, §6.8.1).
func (b *Broker) RetroRegister(regID uint64, t Template, since time.Time) error {
	b.mu.Lock()
	r, ok := b.regs[regID]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("event: no registration %d", regID)
	}
	if !r.pre {
		b.mu.Unlock()
		return fmt.Errorf("event: registration %d is not a pre-registration", regID)
	}
	b.indexRemoveLocked(r)
	r.template = t
	b.indexAddLocked(r)
	r.pre = false
	s := b.sessions[r.session]
	var replay []Event
	if s != nil {
		for _, buf := range b.buffer {
			if buf.ev.Time.After(since) && t.Matches(buf.ev) && b.visible(s, buf.ev) {
				replay = append(replay, buf.ev)
			}
		}
	}
	b.mu.Unlock()
	horizon := b.horizon()
	for _, ev := range replay {
		b.notify(s, r.id, ev, false, horizon)
	}
	return nil
}

// Deregister removes a registration.
func (b *Broker) Deregister(regID uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if r, ok := b.regs[regID]; ok {
		b.indexRemoveLocked(r)
		delete(b.regs, regID)
	}
}

func (b *Broker) visible(s *session, ev Event) bool {
	if b.opts.Visibility == nil {
		return true
	}
	return b.opts.Visibility(s.id, s.credentials, ev)
}

// notify assigns the next per-session sequence number, records the
// notification for resend, and drains the session's outbox in order.
// Per-session delivery order therefore always equals sequence order,
// even with concurrent signallers; the sink runs with no lock held.
func (b *Broker) notify(s *session, regID uint64, ev Event, hb bool, horizon time.Time) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.nextSeq++
	n := Notification{
		Source:    b.name,
		SessionID: s.id,
		Seq:       s.nextSeq,
		Heartbeat: hb,
		RegID:     regID,
		Event:     ev,
		Horizon:   horizon,
	}
	s.unacked = append(s.unacked, n)
	if !s.draining && len(s.outbox) == 0 {
		// Uncontended fast path: nothing queued and nobody delivering, so
		// this notification can go straight to the sink — no outbox
		// append. Concurrent notifiers see draining set and queue behind
		// us, preserving sequence order.
		s.draining = true
		sink := s.sink
		s.mu.Unlock()
		sink.Deliver(n)
		s.mu.Lock()
		s.draining = false
		if len(s.outbox) > 0 {
			b.drainLocked(s)
			return
		}
		s.mu.Unlock()
		return
	}
	s.outbox = append(s.outbox, n)
	b.drainLocked(s)
}

// drainLocked flushes s.outbox to the sink in order. Called with s.mu
// held; returns with it released. Only one goroutine drains at a time;
// others append and leave, so delivery order matches preparation order.
func (b *Broker) drainLocked(s *session) {
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	for len(s.outbox) > 0 {
		batch := s.outbox
		s.outbox = nil
		sink := s.sink
		s.mu.Unlock()
		for _, n := range batch {
			sink.Deliver(n)
		}
		s.mu.Lock()
	}
	s.draining = false
	s.mu.Unlock()
}

// horizon returns the broker's event-horizon timestamp: a lower bound on
// timestamps of future notifications. Events are stamped with a monotone
// clock reading, so the last stamp is such a bound.
func (b *Broker) horizon() time.Time {
	now := b.clk.Now()
	b.stampMu.Lock()
	last := b.lastStamp
	b.stampMu.Unlock()
	if now.After(last) {
		return now
	}
	return last
}

// Signal stamps and signals an event: it is buffered for matching
// pre-registrations and delivered to every live registration whose
// template matches and whose session may see it.
func (b *Broker) Signal(ev Event) Event {
	ev.Source = b.name
	now := b.clk.Now()
	b.stampMu.Lock()
	if !now.After(b.lastStamp) {
		// Guarantee monotone per-source stamps so horizons are honest.
		now = b.lastStamp.Add(time.Nanosecond)
	}
	b.lastStamp = now
	ev.Time = now
	b.eventSeq++
	ev.Seq = b.eventSeq
	b.stampMu.Unlock()
	return b.dispatch(ev)
}

// SignalAt signals an event with an explicit occurrence time, used by
// sources (such as badge sensors) that timestamp at detection. Stamps
// must be monotone per source; non-monotone stamps are nudged forward.
func (b *Broker) SignalAt(ev Event, at time.Time) Event {
	ev.Source = b.name
	b.stampMu.Lock()
	if !at.After(b.lastStamp) {
		at = b.lastStamp.Add(time.Nanosecond)
	}
	b.lastStamp = at
	ev.Time = at
	b.eventSeq++
	ev.Seq = b.eventSeq
	b.stampMu.Unlock()
	return b.dispatch(ev)
}

// dispatch matches the stamped event against candidate registrations
// (by name, and by name+first-literal when the event has arguments) and
// notifies every interested live session. Matching runs under the read
// lock; delivery runs outside it.
func (b *Broker) dispatch(ev Event) Event {
	type target struct {
		s     *session
		regID uint64
	}
	var targets []target
	shouldBuffer := false
	scan := func(bucket map[uint64]*registration) {
		for _, r := range bucket {
			if !r.template.Matches(ev) {
				continue
			}
			if r.pre {
				shouldBuffer = true
				continue
			}
			s, ok := b.sessions[r.session]
			if !ok || !b.visible(s, ev) {
				continue
			}
			targets = append(targets, target{s, r.id})
		}
	}
	b.mu.RLock()
	scan(b.index[ev.Name])
	if len(ev.Args) > 0 {
		scan(b.index[ev.Name+"\x00"+ev.Args[0].String()])
	}
	b.mu.RUnlock()

	if shouldBuffer {
		// Buffer for retrospective registration, trimming by age and
		// count (§6.8.1). Rare path: takes the write lock.
		b.mu.Lock()
		b.buffer = append(b.buffer, buffered{ev: ev, added: ev.Time})
		b.trimBufferLocked(ev.Time)
		b.mu.Unlock()
	}

	horizon := b.horizon()
	for _, t := range targets {
		b.notify(t.s, t.regID, ev, false, horizon)
	}
	return ev
}

func (b *Broker) trimBufferLocked(now time.Time) {
	cutoff := now.Add(-b.opts.RetainFor)
	i := 0
	for i < len(b.buffer) && b.buffer[i].added.Before(cutoff) {
		i++
	}
	if over := len(b.buffer) - i - b.opts.RetainMax; over > 0 {
		i += over
	}
	if i > 0 {
		b.buffer = append([]buffered(nil), b.buffer[i:]...)
	}
}

// Heartbeat asserts the broker's liveness to every open session: each
// receives a heartbeat notification carrying the current event horizon
// (§4.10). The owner calls this every t seconds (or wires it to a
// timer). Sessions are snapshotted under the read lock and notified
// outside it, so a slow sink never stalls registration traffic.
func (b *Broker) Heartbeat() {
	b.mu.RLock()
	sessions := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.mu.RUnlock()
	horizon := b.horizon()
	for _, s := range sessions {
		b.notify(s, 0, Event{}, true, horizon)
	}
}

// Ack acknowledges receipt of every notification up to and including seq
// on the session, letting the broker delete resend state (§4.10).
func (b *Broker) Ack(sess, seq uint64) error {
	b.mu.RLock()
	s, ok := b.sessions[sess]
	b.mu.RUnlock()
	if !ok {
		return ErrNoSession
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.unacked) && s.unacked[i].Seq <= seq {
		i++
	}
	s.unacked = append([]Notification(nil), s.unacked[i:]...)
	return nil
}

// Resend redelivers every unacknowledged notification on the session;
// the broker does this when the client reports a gap or reconnects.
// Resent notifications flow through the session outbox, so they never
// interleave out of order with live traffic.
func (b *Broker) Resend(sess uint64) error {
	b.mu.RLock()
	s, ok := b.sessions[sess]
	b.mu.RUnlock()
	if !ok {
		return ErrNoSession
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrNoSession
	}
	s.outbox = append(s.outbox, s.unacked...)
	b.drainLocked(s)
	return nil
}

// SessionSeq reports the highest sequence number assigned on the
// session so far. A resync snapshot quotes it as the stream position
// the snapshot supersedes: the issuer must read it BEFORE reading
// record state, so that an update racing the snapshot is either in the
// state it reads or delivered later with a sequence above the quoted
// floor — captured twice at worst (idempotent), never lost.
func (b *Broker) SessionSeq(sess uint64) (uint64, error) {
	b.mu.RLock()
	s, ok := b.sessions[sess]
	b.mu.RUnlock()
	if !ok {
		return 0, ErrNoSession
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq, nil
}

// UnackedCount reports resend state held for a session (for tests and
// the background-traffic experiment E6).
func (b *Broker) UnackedCount(sess uint64) int {
	b.mu.RLock()
	s, ok := b.sessions[sess]
	b.mu.RUnlock()
	if !ok {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.unacked)
}

// PendingNotifications reports the total depth of the per-session
// outboxes — notifications prepared but not yet handed to their sinks.
// A sustained backlog means the delivery plane is saturated; the HTTP
// gateway reads this (together with the bus's own queues) to shed load
// instead of letting the queues grow without bound.
func (b *Broker) PendingNotifications() int {
	b.mu.RLock()
	sessions := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.mu.RUnlock()
	pending := 0
	for _, s := range sessions {
		s.mu.Lock()
		pending += len(s.outbox)
		s.mu.Unlock()
	}
	return pending
}

// SessionCount reports the number of open sessions.
func (b *Broker) SessionCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.sessions)
}

// BufferedCount reports the number of occurrences held for retrospective
// registration.
func (b *Broker) BufferedCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.buffer)
}

// Lookup support: some services (the Namer's active database, §6.3.3)
// need an atomic combined lookup-and-register. The broker provides the
// primitive: RegisterAndQuery registers the template live and, under the
// same lock, returns the result of the caller's query function, so no
// update can slip between the two.
func (b *Broker) RegisterAndQuery(sess uint64, t Template, query func() []Event) (uint64, []Event, error) {
	b.mu.Lock()
	if _, ok := b.sessions[sess]; !ok {
		b.mu.Unlock()
		return 0, nil, ErrNoSession
	}
	b.nextReg++
	id := b.nextReg
	r := &registration{id: id, session: sess, template: t}
	b.regs[id] = r
	b.indexAddLocked(r)
	existing := query()
	b.mu.Unlock()
	return id, existing, nil
}

// EnvMatch is a convenience for composite-event evaluators: it matches
// the event against the template under env via Template.Match.
func EnvMatch(t Template, e Event, env value.Env) (value.Env, bool) {
	return t.Match(e, env)
}
