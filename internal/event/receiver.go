package event

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Handler consumes events delivered for one registration.
type Handler func(Event)

// GapHandler is invoked when the receiver detects that one or more
// notifications from a source have been lost or delayed (a sequence gap,
// §4.10); the argument is the source name.
type GapHandler func(source string)

// ReviveHandler is invoked when a source the receiver had presumed
// failed (CheckLiveness, MarkSilent) delivers again — the trigger for
// resynchronisation after a partition heals.
type ReviveHandler func(source string)

// sessKey identifies one delivery stream. Session identifiers are
// allocated independently by each broker, so they are only meaningful
// qualified by the source name; keying by SessionID alone would let
// streams from different sources collide.
type sessKey struct {
	source string
	sess   uint64
}

// Receiver is the client-side event library of figure 6.1. It dispatches
// notifications to per-registration handlers, tracks per-source event
// horizons, detects sequence gaps, suppresses duplicated and stale
// notifications (a faulty link may deliver a notification twice, or
// after a resync already covered it), and acknowledges every i-th
// heartbeat so that the broker can delete resend state.
type Receiver struct {
	ackEvery int
	onGap    GapHandler

	mu          sync.Mutex
	onRevive    ReviveHandler
	handlers    map[uint64]Handler
	srcHandlers map[string]Handler   // keyed source + "/" + regID
	lastSeq     map[sessKey]uint64   // per (source, session)
	horizons    map[string]time.Time // per source
	hbCount     map[sessKey]int
	acks        []Ack
	silent      map[string]bool // sources currently presumed failed
}

// Ack records an acknowledgement the receiver owes its broker; the
// transport collects these via TakeAcks and forwards them.
type Ack struct {
	Session uint64
	Seq     uint64
}

// NewReceiver creates a receiver that acknowledges every ackEvery-th
// heartbeat (i in §4.10).
func NewReceiver(ackEvery int, onGap GapHandler) *Receiver {
	if ackEvery <= 0 {
		ackEvery = 4
	}
	return &Receiver{
		ackEvery:    ackEvery,
		onGap:       onGap,
		handlers:    make(map[uint64]Handler),
		srcHandlers: make(map[string]Handler),
		lastSeq:     make(map[sessKey]uint64),
		horizons:    make(map[string]time.Time),
		hbCount:     make(map[sessKey]int),
		silent:      make(map[string]bool),
	}
}

// Handle installs the handler for a registration id.
func (r *Receiver) Handle(regID uint64, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[regID] = h
}

// HandleFrom installs a handler for a registration id scoped to one
// source, so that registration ids allocated independently by different
// brokers cannot collide.
func (r *Receiver) HandleFrom(source string, regID uint64, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.srcHandlers[srcKey(source, regID)] = h
}

// OnRevive installs the handler called when a silent source delivers.
func (r *Receiver) OnRevive(h ReviveHandler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onRevive = h
}

func srcKey(source string, regID uint64) string {
	return source + "/" + strconv.FormatUint(regID, 10)
}

// Deliver implements Sink.
func (r *Receiver) Deliver(n Notification) {
	k := sessKey{n.Source, n.SessionID}
	r.mu.Lock()
	last, seen := r.lastSeq[k]
	// A notification at or below the stream's high-water mark is a
	// duplicate (lossy links may copy) or predates a resync floor
	// (SetSessionFloor); its payload must not be re-applied. Its
	// horizon and liveness evidence are still honoured below — the
	// source is demonstrably alive.
	stale := seen && n.Seq <= last
	gap := false
	if !stale {
		// A coalescing transport collapses a run of superseded
		// notifications into one, reporting the collapsed count;
		// sequence numbers (Seq-Coalesced .. Seq) all count as
		// received (§4.10).
		if seen && n.Seq > last+1+n.Coalesced {
			gap = true
		}
		r.lastSeq[k] = n.Seq
	}
	if n.Horizon.After(r.horizons[n.Source]) {
		r.horizons[n.Source] = n.Horizon
	}
	revived := r.silent[n.Source]
	delete(r.silent, n.Source)
	var h Handler
	if !stale {
		if !n.Heartbeat {
			if sh, ok := r.srcHandlers[srcKey(n.Source, n.RegID)]; ok {
				h = sh
			} else {
				h = r.handlers[n.RegID]
			}
		} else {
			r.hbCount[k]++
			if r.hbCount[k]%r.ackEvery == 0 {
				r.acks = append(r.acks, Ack{Session: n.SessionID, Seq: n.Seq})
			}
		}
	}
	onGap := r.onGap
	onRevive := r.onRevive
	r.mu.Unlock()

	// The payload is applied before the revive/gap callbacks run: those
	// callbacks typically trigger a resync, and a resync snapshot taken
	// at the source necessarily covers this notification (it was sent
	// first) — so snapshot-after-payload converges, while
	// payload-after-snapshot could roll a record back to a state the
	// snapshot had already superseded.
	if h != nil {
		h(n.Event)
	}
	if revived && onRevive != nil {
		onRevive(n.Source)
	}
	if gap && onGap != nil {
		onGap(n.Source)
	}
}

// SetSessionFloor seals a delivery stream at seq: notifications on it
// numbered seq or lower are treated as stale and not dispatched. A
// resync snapshot taken at broker sequence s already reflects every
// update up to s, so in-flight copies of those notifications —
// delayed in the network across the resync — must not be re-applied
// on top of the fresher snapshot.
func (r *Receiver) SetSessionFloor(source string, sess, seq uint64) {
	k := sessKey{source, sess}
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq > r.lastSeq[k] {
		r.lastSeq[k] = seq
	}
}

// ObserveSource seeds liveness tracking for a source from an
// out-of-band contact (e.g. a successful synchronous validation call):
// the source was demonstrably alive at t, so silence is measured from
// then even before the first notification arrives.
func (r *Receiver) ObserveSource(source string, t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t.After(r.horizons[source]) {
		r.horizons[source] = t
	}
	delete(r.silent, source)
}

// Horizon returns the highest event-horizon timestamp seen from the
// source: the receiver is guaranteed to have seen every event from that
// source with an earlier timestamp (assuming no unresolved gap).
func (r *Receiver) Horizon(source string) (time.Time, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.horizons[source]
	return t, ok
}

// Sources lists every source the receiver tracks, sorted for
// deterministic iteration.
func (r *Receiver) Sources() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.horizons))
	for src := range r.horizons {
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}

// TakeAcks returns and clears the pending acknowledgements.
func (r *Receiver) TakeAcks() []Ack {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.acks
	r.acks = nil
	return out
}

// CheckLiveness inspects each known source's horizon against the current
// time: if a source has been quiet past the allowance (the heartbeat
// period t plus slack), it is presumed failed and reported. A client can
// be certain of receiving an event within t of its generation, or of
// detecting that notification may have failed (§4.10).
func (r *Receiver) CheckLiveness(now time.Time, allowance time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var failed []string
	for src, h := range r.horizons {
		if now.Sub(h) > allowance && !r.silent[src] {
			r.silent[src] = true
			failed = append(failed, src)
		}
	}
	sort.Strings(failed)
	return failed
}

// MarkSilent records an external presumption of failure for the source
// (the service-level suspicion machinery escalates independently of
// CheckLiveness); the next delivery from it fires OnRevive.
func (r *Receiver) MarkSilent(source string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.silent[source] = true
}

// Silent reports whether the source is currently presumed failed.
func (r *Receiver) Silent(source string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.silent[source]
}

var _ Sink = (*Receiver)(nil)
