package event

import (
	"strconv"
	"sync"
	"time"
)

// Handler consumes events delivered for one registration.
type Handler func(Event)

// GapHandler is invoked when the receiver detects that one or more
// notifications from a source have been lost or delayed (a sequence gap,
// §4.10); the argument is the source name.
type GapHandler func(source string)

// Receiver is the client-side event library of figure 6.1. It dispatches
// notifications to per-registration handlers, tracks per-source event
// horizons, detects sequence gaps, and acknowledges every i-th heartbeat
// so that the broker can delete resend state.
type Receiver struct {
	ackEvery int
	onGap    GapHandler

	mu          sync.Mutex
	handlers    map[uint64]Handler
	srcHandlers map[string]Handler   // keyed source + "/" + regID
	lastSeq     map[uint64]uint64    // per session
	horizons    map[string]time.Time // per source
	hbCount     map[uint64]int
	acks        []Ack
	silent      map[string]bool // sources currently presumed failed
}

// Ack records an acknowledgement the receiver owes its broker; the
// transport collects these via TakeAcks and forwards them.
type Ack struct {
	Session uint64
	Seq     uint64
}

// NewReceiver creates a receiver that acknowledges every ackEvery-th
// heartbeat (i in §4.10).
func NewReceiver(ackEvery int, onGap GapHandler) *Receiver {
	if ackEvery <= 0 {
		ackEvery = 4
	}
	return &Receiver{
		ackEvery:    ackEvery,
		onGap:       onGap,
		handlers:    make(map[uint64]Handler),
		srcHandlers: make(map[string]Handler),
		lastSeq:     make(map[uint64]uint64),
		horizons:    make(map[string]time.Time),
		hbCount:     make(map[uint64]int),
		silent:      make(map[string]bool),
	}
}

// Handle installs the handler for a registration id.
func (r *Receiver) Handle(regID uint64, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[regID] = h
}

// HandleFrom installs a handler for a registration id scoped to one
// source, so that registration ids allocated independently by different
// brokers cannot collide.
func (r *Receiver) HandleFrom(source string, regID uint64, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.srcHandlers[srcKey(source, regID)] = h
}

func srcKey(source string, regID uint64) string {
	return source + "/" + strconv.FormatUint(regID, 10)
}

// Deliver implements Sink.
func (r *Receiver) Deliver(n Notification) {
	r.mu.Lock()
	gap := false
	// A coalescing transport collapses a run of superseded notifications
	// into one, reporting the collapsed count; sequence numbers
	// (Seq-Coalesced .. Seq) all count as received (§4.10).
	if last, ok := r.lastSeq[n.SessionID]; ok && n.Seq > last+1+n.Coalesced {
		gap = true
	}
	if n.Seq > r.lastSeq[n.SessionID] {
		r.lastSeq[n.SessionID] = n.Seq
	}
	if n.Horizon.After(r.horizons[n.Source]) {
		r.horizons[n.Source] = n.Horizon
	}
	delete(r.silent, n.Source)
	var h Handler
	if !n.Heartbeat {
		if sh, ok := r.srcHandlers[srcKey(n.Source, n.RegID)]; ok {
			h = sh
		} else {
			h = r.handlers[n.RegID]
		}
	} else {
		r.hbCount[n.SessionID]++
		if r.hbCount[n.SessionID]%r.ackEvery == 0 {
			r.acks = append(r.acks, Ack{Session: n.SessionID, Seq: n.Seq})
		}
	}
	onGap := r.onGap
	r.mu.Unlock()

	if gap && onGap != nil {
		onGap(n.Source)
	}
	if h != nil {
		h(n.Event)
	}
}

// ObserveSource seeds liveness tracking for a source from an
// out-of-band contact (e.g. a successful synchronous validation call):
// the source was demonstrably alive at t, so silence is measured from
// then even before the first notification arrives.
func (r *Receiver) ObserveSource(source string, t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t.After(r.horizons[source]) {
		r.horizons[source] = t
	}
	delete(r.silent, source)
}

// Horizon returns the highest event-horizon timestamp seen from the
// source: the receiver is guaranteed to have seen every event from that
// source with an earlier timestamp (assuming no unresolved gap).
func (r *Receiver) Horizon(source string) (time.Time, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.horizons[source]
	return t, ok
}

// TakeAcks returns and clears the pending acknowledgements.
func (r *Receiver) TakeAcks() []Ack {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.acks
	r.acks = nil
	return out
}

// CheckLiveness inspects each known source's horizon against the current
// time: if a source has been quiet past the allowance (the heartbeat
// period t plus slack), it is presumed failed and reported. A client can
// be certain of receiving an event within t of its generation, or of
// detecting that notification may have failed (§4.10).
func (r *Receiver) CheckLiveness(now time.Time, allowance time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var failed []string
	for src, h := range r.horizons {
		if now.Sub(h) > allowance && !r.silent[src] {
			r.silent[src] = true
			failed = append(failed, src)
		}
	}
	return failed
}

// Silent reports whether the source is currently presumed failed.
func (r *Receiver) Silent(source string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.silent[source]
}

var _ Sink = (*Receiver)(nil)
