package event

import (
	"testing"
	"time"

	"oasis/internal/value"
)

func ev(name string, args ...value.Value) Event { return New(name, args...) }

func TestTemplateMatchLiterals(t *testing.T) {
	tpl := NewTemplate("Finished", Lit(value.Int(27)))
	if !tpl.Matches(ev("Finished", value.Int(27))) {
		t.Fatal("literal template did not match equal event")
	}
	if tpl.Matches(ev("Finished", value.Int(28))) {
		t.Fatal("literal template matched unequal event")
	}
	if tpl.Matches(ev("Started", value.Int(27))) {
		t.Fatal("template matched different event type")
	}
	if tpl.Matches(ev("Finished")) {
		t.Fatal("template matched wrong arity")
	}
}

func TestTemplateMatchWildcard(t *testing.T) {
	tpl := NewTemplate("Finished", Wildcard())
	for _, n := range []int64{1, 2, 99} {
		if !tpl.Matches(ev("Finished", value.Int(n))) {
			t.Fatalf("wildcard failed to match %d", n)
		}
	}
}

func TestTemplateMatchVariableBinding(t *testing.T) {
	tpl := NewTemplate("Seen", Var("b"), Var("r"))
	env, ok := tpl.Match(ev("Seen", value.Str("badge12"), value.Str("T14")), value.Env{})
	if !ok {
		t.Fatal("variable template did not match")
	}
	if !env["b"].Equal(value.Str("badge12")) || !env["r"].Equal(value.Str("T14")) {
		t.Fatalf("bindings wrong: %v", env)
	}
}

func TestTemplateMatchBoundVariable(t *testing.T) {
	tpl := NewTemplate("Seen", Var("b"), Var("r"))
	env := value.Env{}.Extend("b", value.Str("badge12"))
	if _, ok := tpl.Match(ev("Seen", value.Str("badge13"), value.Str("T14")), env); ok {
		t.Fatal("bound variable matched different value")
	}
	env2, ok := tpl.Match(ev("Seen", value.Str("badge12"), value.Str("T15")), env)
	if !ok {
		t.Fatal("bound variable failed to match equal value")
	}
	if !env2["r"].Equal(value.Str("T15")) {
		t.Fatal("new variable not bound alongside bound one")
	}
}

func TestTemplateRepeatedVariableMustAgree(t *testing.T) {
	// Seen(x, x) should only match events whose two args are equal.
	tpl := NewTemplate("Pair", Var("x"), Var("x"))
	if !tpl.Matches(ev("Pair", value.Int(1), value.Int(1))) {
		t.Fatal("repeated variable did not match agreeing args")
	}
	if tpl.Matches(ev("Pair", value.Int(1), value.Int(2))) {
		t.Fatal("repeated variable matched disagreeing args")
	}
}

func TestTemplateMatchDoesNotMutateEnv(t *testing.T) {
	tpl := NewTemplate("Seen", Var("b"))
	env := value.Env{}
	_, ok := tpl.Match(ev("Seen", value.Str("x")), env)
	if !ok {
		t.Fatal("match failed")
	}
	if len(env) != 0 {
		t.Fatal("Match mutated caller's environment")
	}
}

func TestTemplateInstantiateAndGround(t *testing.T) {
	tpl := NewTemplate("Seen", Var("b"), Var("r"))
	env := value.Env{}.Extend("b", value.Str("badge12"))
	inst := tpl.Instantiate(env)
	if inst.Params[0].Lit.S != "badge12" || inst.Params[0].Var != "" {
		t.Fatalf("Instantiate did not substitute: %v", inst)
	}
	if inst.Params[1].Var != "r" {
		t.Fatal("Instantiate touched unbound variable")
	}
	if tpl.Ground(env) {
		t.Fatal("template with unbound var reported ground")
	}
	if !tpl.Ground(env.Extend("r", value.Str("T14"))) {
		t.Fatal("fully bound template not ground")
	}
	if NewTemplate("X", Wildcard()).Ground(value.Env{}) {
		t.Fatal("wildcard template reported ground")
	}
}

func TestTemplateString(t *testing.T) {
	tpl := NewTemplate("Seen", Var("b"), Wildcard(), Lit(value.Int(3)))
	if got, want := tpl.String(), "Seen(b,*,3)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Name: "Seen", Args: []value.Value{value.Str("b")}, Time: time.Unix(0, 5)}
	if got, want := e.String(), `Seen("b")@5`; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
