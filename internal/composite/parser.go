package composite

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"

	"oasis/internal/event"
	"oasis/internal/value"
)

// ParseOptions configure parsing.
type ParseOptions struct {
	// AggNames are the aggregation function names in scope; a call to
	// one of these parses as an Agg node rather than a base event.
	AggNames map[string]bool
}

// Parse parses a composite event expression. Operator precedence,
// loosest to tightest: ';', '|', '-', '$' (§6.6: whenever binds most
// closely, sequence least).
func Parse(src string, opts ParseOptions) (Node, error) {
	toks, err := scan(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{toks: toks, opts: opts}
	n, err := p.seq()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != cEOF {
		return nil, fmt.Errorf("composite: unexpected %q at end of expression", p.cur().text)
	}
	return n, nil
}

// MustParse panics on error; for static expressions in examples/tests.
func MustParse(src string, opts ParseOptions) Node {
	n, err := Parse(src, opts)
	if err != nil {
		panic(err)
	}
	return n
}

type ckind int

const (
	cEOF ckind = iota + 1
	cIdent
	cNumber
	cString
	cLParen
	cRParen
	cLBrace
	cRBrace
	cComma
	cSemi
	cPipe
	cMinus
	cDollar
	cAt
	cPlus
	cEq
	cNeq
	cLt
	cLe
	cGt
	cGe
	cAssign
	cStar
)

type ctok struct {
	kind ckind
	text string
}

func scan(src string) ([]ctok, error) {
	var out []ctok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			out = append(out, ctok{cLParen, "("})
			i++
		case c == ')':
			out = append(out, ctok{cRParen, ")"})
			i++
		case c == '{':
			out = append(out, ctok{cLBrace, "{"})
			i++
		case c == '}':
			out = append(out, ctok{cRBrace, "}"})
			i++
		case c == ',':
			out = append(out, ctok{cComma, ","})
			i++
		case c == ';':
			out = append(out, ctok{cSemi, ";"})
			i++
		case c == '|':
			out = append(out, ctok{cPipe, "|"})
			i++
		case c == '-':
			out = append(out, ctok{cMinus, "-"})
			i++
		case c == '$':
			out = append(out, ctok{cDollar, "$"})
			i++
		case c == '@':
			out = append(out, ctok{cAt, "@"})
			i++
		case c == '+':
			out = append(out, ctok{cPlus, "+"})
			i++
		case c == '*':
			out = append(out, ctok{cStar, "*"})
			i++
		case c == '=':
			out = append(out, ctok{cEq, "="})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, ctok{cNeq, "!="})
				i += 2
			} else {
				return nil, fmt.Errorf("composite: unexpected '!'")
			}
		case c == ':':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, ctok{cAssign, ":="})
				i += 2
			} else {
				return nil, fmt.Errorf("composite: unexpected ':'")
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, ctok{cLe, "<="})
				i += 2
			} else {
				out = append(out, ctok{cLt, "<"})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, ctok{cGe, ">="})
				i += 2
			} else {
				out = append(out, ctok{cGt, ">"})
				i++
			}
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' {
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("composite: unterminated string")
			}
			out = append(out, ctok{cString, b.String()})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			out = append(out, ctok{cNumber, src[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.') {
				j++
			}
			out = append(out, ctok{cIdent, src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("composite: unexpected character %q", c)
		}
	}
	out = append(out, ctok{cEOF, ""})
	return out, nil
}

type cparser struct {
	toks []ctok
	pos  int
	opts ParseOptions
}

func (p *cparser) cur() ctok { return p.toks[p.pos] }

func (p *cparser) advance() ctok {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *cparser) accept(k ckind) bool {
	if p.cur().kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *cparser) expect(k ckind) (ctok, error) {
	if p.cur().kind == k {
		return p.advance(), nil
	}
	return ctok{}, fmt.Errorf("composite: expected token %d, found %q", k, p.cur().text)
}

// seq := or { ';' or }
func (p *cparser) seq() (Node, error) {
	l, err := p.or()
	if err != nil {
		return nil, err
	}
	for p.accept(cSemi) {
		r, err := p.or()
		if err != nil {
			return nil, err
		}
		l = Seq{L: l, R: r}
	}
	return l, nil
}

// or := without { '|' without }
func (p *cparser) or() (Node, error) {
	l, err := p.without()
	if err != nil {
		return nil, err
	}
	for p.accept(cPipe) {
		r, err := p.without()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

// without := unary { '-' unary [annotation] }
func (p *cparser) without() (Node, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.accept(cMinus) {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		w := Without{L: l, R: r}
		if p.cur().kind == cLBrace && p.annotationAhead() {
			if err := p.annotation(&w); err != nil {
				return nil, err
			}
		}
		l = w
	}
	return l, nil
}

// annotationAhead distinguishes "{Delay=...}" / "{Probability=...}" from
// a side expression (which can only follow a base event, handled in
// base()).
func (p *cparser) annotationAhead() bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+1]
	return t.kind == cIdent && (t.text == "Delay" || t.text == "Probability")
}

func (p *cparser) annotation(w *Without) error {
	if _, err := p.expect(cLBrace); err != nil {
		return err
	}
	for {
		name, err := p.expect(cIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(cEq); err != nil {
			return err
		}
		switch name.text {
		case "Delay":
			s, err := p.expect(cString)
			if err != nil {
				return err
			}
			d, err := time.ParseDuration(s.text)
			if err != nil {
				return fmt.Errorf("composite: bad Delay %q: %v", s.text, err)
			}
			w.Delay, w.HasDel = d, true
		case "Probability":
			n, err := p.expect(cNumber)
			if err != nil {
				return err
			}
			pct, err := strconv.Atoi(n.text)
			if err != nil || pct < 0 || pct > 100 {
				return fmt.Errorf("composite: bad Probability %q (percent 0-100)", n.text)
			}
			// Higher required probability of correct ordering widens the
			// margin by which an R occurrence is considered "first"
			// (§6.8.4). The mapping assumes a 1s worst-case drift.
			w.Margin = time.Duration(pct) * 10 * time.Millisecond
		default:
			return fmt.Errorf("composite: unknown annotation %q", name.text)
		}
		if !p.accept(cComma) {
			break
		}
	}
	_, err := p.expect(cRBrace)
	return err
}

// unary := '$' unary | '(' seq ')' | agg | AbsTime | null | base
func (p *cparser) unary() (Node, error) {
	if p.accept(cDollar) {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Whenever{E: e}, nil
	}
	if p.accept(cLParen) {
		e, err := p.seq()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(cRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	name, err := p.expect(cIdent)
	if err != nil {
		return nil, err
	}
	switch {
	case name.text == "null":
		return Null{}, nil
	case name.text == "AbsTime":
		if _, err := p.expect(cLParen); err != nil {
			return nil, err
		}
		v, err := p.expect(cIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(cRParen); err != nil {
			return nil, err
		}
		return AbsTime{Var: v.text}, nil
	case p.opts.AggNames[name.text]:
		if _, err := p.expect(cLParen); err != nil {
			return nil, err
		}
		e, err := p.seq()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(cRParen); err != nil {
			return nil, err
		}
		return Agg{Name: name.text, E: e}, nil
	default:
		return p.base(name.text)
	}
}

// base := Name ['(' params ')'] [side]
func (p *cparser) base(name string) (Node, error) {
	b := Base{T: event.Template{Name: name}}
	if p.accept(cLParen) {
		for p.cur().kind != cRParen {
			prm, err := p.param()
			if err != nil {
				return nil, err
			}
			b.T.Params = append(b.T.Params, prm)
			if !p.accept(cComma) {
				break
			}
		}
		if _, err := p.expect(cRParen); err != nil {
			return nil, err
		}
	}
	if p.cur().kind == cLBrace && !p.annotationAhead() {
		side, err := p.side()
		if err != nil {
			return nil, err
		}
		b.Side = side
	}
	return b, nil
}

func (p *cparser) param() (event.Param, error) {
	t := p.cur()
	switch t.kind {
	case cStar:
		p.advance()
		return event.Wildcard(), nil
	case cIdent:
		p.advance()
		return event.Var(t.text), nil
	case cNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return event.Param{}, err
		}
		return event.Lit(value.Int(n)), nil
	case cString:
		p.advance()
		return event.Lit(value.Str(t.text)), nil
	default:
		return event.Param{}, fmt.Errorf("composite: bad template parameter %q", t.text)
	}
}

// side := '{' sideexpr {',' sideexpr} '}'
func (p *cparser) side() ([]SideExpr, error) {
	if _, err := p.expect(cLBrace); err != nil {
		return nil, err
	}
	var out []SideExpr
	for {
		l, err := p.expect(cIdent)
		if err != nil {
			return nil, err
		}
		var op SideOp
		switch p.cur().kind {
		case cEq:
			op = SideEq
		case cNeq:
			op = SideNeq
		case cLt:
			op = SideLt
		case cLe:
			op = SideLe
		case cGt:
			op = SideGt
		case cGe:
			op = SideGe
		case cAssign:
			op = SideAssign
		default:
			return nil, fmt.Errorf("composite: bad side-expression operator %q", p.cur().text)
		}
		p.advance()
		r, err := p.sideTerm()
		if err != nil {
			return nil, err
		}
		out = append(out, SideExpr{L: l.text, Op: op, R: r})
		if !p.accept(cComma) {
			break
		}
	}
	if _, err := p.expect(cRBrace); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *cparser) sideTerm() (SideTerm, error) {
	t := p.cur()
	switch t.kind {
	case cAt:
		p.advance()
		st := SideTerm{IsNow: true}
		if p.accept(cPlus) {
			n, err := p.expect(cNumber)
			if err != nil {
				return SideTerm{}, err
			}
			secs, err := strconv.Atoi(n.text)
			if err != nil {
				return SideTerm{}, err
			}
			st.Offset = time.Duration(secs) * time.Second
		}
		return st, nil
	case cIdent:
		p.advance()
		return SideTerm{Var: t.text}, nil
	case cNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return SideTerm{}, err
		}
		v := value.Int(n)
		return SideTerm{Lit: &v}, nil
	case cString:
		p.advance()
		v := value.Str(t.text)
		return SideTerm{Lit: &v}, nil
	default:
		return SideTerm{}, fmt.Errorf("composite: bad side-expression term %q", t.text)
	}
}
