package composite

import (
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/event"
	"oasis/internal/value"
)

func TestAttachMirrorsNarrowedRegistrations(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1000, 0))
	broker := event.NewBroker("DB", clk, event.BrokerOptions{})

	var at *Attachment
	var occ []Occurrence
	m := NewMachine(
		MustParse(`OwnsBadge("rjh21", b); Seen(b, room)`, ParseOptions{}),
		func(o Occurrence) { occ = append(occ, o) },
		MachineOptions{
			Sources:    []string{"DB"},
			OnRegister: func(tm event.Template) { at.Register(tm) },
		})
	var err error
	at, err = Attach(m, broker, nil)
	if err != nil {
		t.Fatal(err)
	}
	at.StartAt(clk.Now(), value.Env{})

	if at.Registrations() != 1 {
		t.Fatalf("initial registrations = %d, want 1 (only OwnsBadge)", at.Registrations())
	}
	// An irrelevant Seen event before the badge is known must NOT reach
	// the machine at all — the broker filters it (§6.7's efficiency
	// point, stronger than machine-side filtering).
	clk.Advance(time.Second)
	broker.Signal(event.New("Seen", value.Str("b99"), value.Str("T14")))
	if _, matched := m.Stats(); matched != 0 {
		t.Fatal("unregistered event reached the machine")
	}

	clk.Advance(time.Second)
	broker.Signal(event.New("OwnsBadge", value.Str("rjh21"), value.Str("b7")))
	if at.Registrations() != 2 {
		t.Fatalf("registrations after binding = %d, want 2", at.Registrations())
	}
	clk.Advance(time.Second)
	broker.Signal(event.New("Seen", value.Str("b7"), value.Str("T15")))
	if len(occ) != 1 || occ[0].Env["room"].S != "T15" {
		t.Fatalf("occurrences = %v", occ)
	}
	if err := at.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachHeartbeatsDriveHorizons(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1000, 0))
	broker := event.NewBroker("S", clk, event.BrokerOptions{})
	var at *Attachment
	var occ []Occurrence
	m := NewMachine(
		MustParse(`A() - B()`, ParseOptions{}),
		func(o Occurrence) { occ = append(occ, o) },
		MachineOptions{
			Sources:    []string{"S"},
			OnRegister: func(tm event.Template) { at.Register(tm) },
		})
	var err error
	at, err = Attach(m, broker, nil)
	if err != nil {
		t.Fatal(err)
	}
	at.StartAt(clk.Now(), value.Env{})

	clk.Advance(time.Second)
	broker.Signal(event.New("A"))
	if len(occ) != 0 {
		t.Fatal("without fired before horizon")
	}
	// A heartbeat carries the horizon past A's timestamp.
	clk.Advance(5 * time.Second)
	broker.Heartbeat()
	if len(occ) != 1 {
		t.Fatalf("occurrences = %d after heartbeat", len(occ))
	}
}
