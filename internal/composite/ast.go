// Package composite implements the distributed composite event language
// of chapter 6 of the paper: base event templates with parameter
// matching and side expressions, the sequence (;), inclusive-or (|),
// without (-) and whenever ($) operators, AbsTime timers, and the
// 'push-down' evaluation machine of §6.7 in which independent beads
// carry environments so that network delay affecting one sub-evaluation
// does not disturb others.
//
// Surface syntax (ASCII rendering of the paper's notation):
//
//	$Seen(B, R2); Seen(B, R) - Seen(B, R2)
//	Alarm(); (Seen(B) - AllClear()); OwnsBadge(B, P)
//	$Alarm() {t := @+60}; AbsTime(t); $OwnsBadge(B, P); Seen(B)
//	A - B {Delay="5s"}
//	Open(x); COUNT(Deposit(x, y) - Close(x))
package composite

import (
	"fmt"
	"strings"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

// Node is a composite event expression.
type Node interface {
	fmt.Stringer
	isNode()
}

// SideOp enumerates side-expression operators (§6.5.1). OpAssign binds
// the left variable to the right expression's value.
type SideOp int

// Side-expression operators.
const (
	SideEq SideOp = iota + 1
	SideNeq
	SideLt
	SideLe
	SideGt
	SideGe
	SideAssign
)

func (o SideOp) String() string {
	switch o {
	case SideEq:
		return "="
	case SideNeq:
		return "!="
	case SideLt:
		return "<"
	case SideLe:
		return "<="
	case SideGt:
		return ">"
	case SideGe:
		return ">="
	case SideAssign:
		return ":="
	default:
		return "?"
	}
}

// SideTerm is an operand of a side expression: a variable, a literal,
// or the current time '@' plus an offset in seconds.
type SideTerm struct {
	Var    string
	Lit    *value.Value
	IsNow  bool
	Offset time.Duration // applies to IsNow
}

func (t SideTerm) String() string {
	switch {
	case t.Var != "":
		return t.Var
	case t.IsNow && t.Offset != 0:
		return fmt.Sprintf("@+%d", int(t.Offset/time.Second))
	case t.IsNow:
		return "@"
	case t.Lit != nil:
		return t.Lit.String()
	default:
		return "<term>"
	}
}

// SideExpr is one clause of a base event's side expression.
type SideExpr struct {
	L  string // always a variable on the left
	Op SideOp
	R  SideTerm
}

func (s SideExpr) String() string {
	return s.L + " " + s.Op.String() + " " + s.R.String()
}

// Base is a base event template with optional side expressions (§6.5).
type Base struct {
	T    event.Template
	Side []SideExpr
}

func (b Base) isNode() {}

func (b Base) String() string {
	s := b.T.String()
	if len(b.Side) > 0 {
		parts := make([]string, len(b.Side))
		for i, se := range b.Side {
			parts[i] = se.String()
		}
		s += " {" + strings.Join(parts, ", ") + "}"
	}
	return s
}

// Seq is the sequence operator C1 ; C2 — C2 evaluated from each
// occurrence time of C1 (§6.5). It does not mean "immediately
// following": no interest is registered in other events.
type Seq struct{ L, R Node }

func (Seq) isNode() {}

func (s Seq) String() string { return s.L.String() + "; " + s.R.String() }

// Or is the inclusive-or operator C1 | C2.
type Or struct{ L, R Node }

func (Or) isNode() {}

func (o Or) String() string { return "(" + o.L.String() + " | " + o.R.String() + ")" }

// Without is C1 - C2: C1 occurs without C2 having occurred first. Delay
// optionally trades certainty for latency (§6.8.3); Margin widens the
// ordering comparison to account for clock drift (§6.8.4).
type Without struct {
	L, R   Node
	Delay  time.Duration // 0 = wait for the event horizon
	HasDel bool
	Margin time.Duration // probability-of-ordering allowance
}

func (Without) isNode() {}

func (w Without) String() string {
	s := "(" + w.L.String() + " - " + w.R.String()
	if w.HasDel {
		s += fmt.Sprintf(" {Delay=%q}", w.Delay)
	}
	if w.Margin != 0 {
		s += fmt.Sprintf(" {Margin=%q}", w.Margin)
	}
	return s + ")"
}

// Whenever is the $ operator (§6.4.2): a new evaluation starts each time
// the previous one completes, each with (potentially) different
// bindings; it replaces the Kleene star in an open environment.
type Whenever struct{ E Node }

func (Whenever) isNode() {}

func (w Whenever) String() string { return "$" + w.E.String() }

// AbsTime triggers at the absolute time bound to its variable (used by
// the fire-drill example: $Alarm() {t := @+60}; AbsTime(t); ...).
type AbsTime struct{ Var string }

func (AbsTime) isNode() {}

func (a AbsTime) String() string { return "AbsTime(" + a.Var + ")" }

// Agg wraps a sub-expression with an aggregation function (§6.9): the
// function collates the sub-expression's occurrence stream (with
// meta-events about the fixed portion of the queue) and emits derived
// occurrences.
type Agg struct {
	Name string
	E    Node
}

func (Agg) isNode() {}

func (a Agg) String() string { return a.Name + "(" + a.E.String() + ")" }

// Null is the trivial event that occurs at the evaluation start time; it
// completes the algebra's correspondence with regular expressions (§6.5).
type Null struct{}

func (Null) isNode() {}

func (Null) String() string { return "null" }
