package composite

import (
	"testing"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

// feeder drives a machine with timestamped events from named sources.
type feeder struct {
	m   *Machine
	t0  time.Time
	occ []Occurrence
}

func newFeeder(t *testing.T, src string, opts MachineOptions) *feeder {
	t.Helper()
	n, err := Parse(src, ParseOptions{AggNames: aggNamesOf(opts.Aggs)})
	if err != nil {
		t.Fatal(err)
	}
	f := &feeder{t0: time.Unix(1000, 0)}
	f.m = NewMachine(n, func(o Occurrence) { f.occ = append(f.occ, o) }, opts)
	f.m.Start(f.t0, value.Env{})
	return f
}

func aggNamesOf(aggs map[string]AggFactory) map[string]bool {
	out := make(map[string]bool, len(aggs))
	for k := range aggs {
		out[k] = true
	}
	return out
}

// at builds an event occurring secs after t0 from the given source.
func (f *feeder) at(secs int, source, name string, args ...value.Value) event.Event {
	return event.Event{
		Name: name, Source: source, Args: args,
		Time: f.t0.Add(time.Duration(secs) * time.Second),
	}
}

func (f *feeder) send(secs int, name string, args ...value.Value) {
	f.m.Process(f.at(secs, "s", name, args...))
}

func (f *feeder) horizonAll(secs int, sources ...string) {
	for _, s := range sources {
		f.m.ProcessHorizon(s, f.t0.Add(time.Duration(secs)*time.Second))
	}
}

func str(s string) value.Value { return value.Str(s) }

func TestBaseEventTriggersOnce(t *testing.T) {
	f := newFeeder(t, `Finished(27)`, MachineOptions{})
	f.send(1, "Finished", value.Int(26))
	f.send(2, "Finished", value.Int(27))
	f.send(3, "Finished", value.Int(27))
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d, want 1 (base event = first match)", len(f.occ))
	}
	if f.occ[0].Time != f.t0.Add(2*time.Second) {
		t.Fatalf("occurrence time = %v", f.occ[0].Time)
	}
}

func TestVariableBindingInOccurrence(t *testing.T) {
	f := newFeeder(t, `Seen(b, r)`, MachineOptions{})
	f.send(1, "Seen", str("badge12"), str("T14"))
	if len(f.occ) != 1 {
		t.Fatal("no occurrence")
	}
	if f.occ[0].Env["b"].S != "badge12" || f.occ[0].Env["r"].S != "T14" {
		t.Fatalf("env = %v", f.occ[0].Env)
	}
}

func TestSequence(t *testing.T) {
	f := newFeeder(t, `A(); B()`, MachineOptions{})
	f.send(1, "B") // B before A does not count
	f.send(2, "A")
	f.send(3, "B")
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
	if f.occ[0].Time != f.t0.Add(3*time.Second) {
		t.Fatalf("time = %v", f.occ[0].Time)
	}
}

func TestSequenceSharesBindings(t *testing.T) {
	// Seen(b, x); Seen(b, y): the same badge must appear in both.
	f := newFeeder(t, `Seen(b, x); Gone(b)`, MachineOptions{})
	f.send(1, "Seen", str("b1"), str("T14"))
	f.send(2, "Gone", str("b2")) // different badge: no match
	f.send(3, "Gone", str("b1"))
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
}

func TestOrTriggersForEither(t *testing.T) {
	f := newFeeder(t, `A() | B()`, MachineOptions{})
	f.send(1, "B")
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
	// Both sides may trigger (inclusive or over occurrence sets).
	f.send(2, "A")
	if len(f.occ) != 2 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
}

func TestWheneverRestartsWithFreshBindings(t *testing.T) {
	// $Enter(p): one occurrence per event, each with its own binding.
	f := newFeeder(t, `$Enter(p)`, MachineOptions{})
	f.send(1, "Enter", str("alice"))
	f.send(2, "Enter", str("bob"))
	f.send(3, "Enter", str("carol"))
	if len(f.occ) != 3 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
	if f.occ[1].Env["p"].S != "bob" {
		t.Fatalf("second binding = %v", f.occ[1].Env)
	}
}

func TestWithoutBlocksWhenRFirst(t *testing.T) {
	// A() - B(): B first kills the evaluation.
	f := newFeeder(t, `A() - B()`, MachineOptions{})
	f.send(1, "B")
	f.send(2, "A")
	f.send(10, "X") // advance horizon (total-order mode)
	if len(f.occ) != 0 {
		t.Fatalf("occurrences = %d, want 0", len(f.occ))
	}
}

func TestWithoutFiresAfterHorizon(t *testing.T) {
	f := newFeeder(t, `A() - B()`, MachineOptions{})
	f.send(2, "A")
	if len(f.occ) != 0 {
		t.Fatal("without fired before absence was certain")
	}
	f.send(3, "X") // total-order horizon passes 2s
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d, want 1", len(f.occ))
	}
	if f.occ[0].Time != f.t0.Add(2*time.Second) {
		t.Fatalf("time = %v (must be A's occurrence time)", f.occ[0].Time)
	}
}

func TestWithoutWithDeclaredSources(t *testing.T) {
	// §6.8.2: with declared sources, absence requires every source's
	// horizon to pass — one lagging sensor holds back certainty.
	f := newFeeder(t, `A() - B()`, MachineOptions{Sources: []string{"s1", "s2"}})
	f.m.Process(f.at(2, "s1", "A"))
	f.m.ProcessHorizon("s1", f.t0.Add(5*time.Second))
	if len(f.occ) != 0 {
		t.Fatal("fired while s2's horizon unknown")
	}
	f.m.ProcessHorizon("s2", f.t0.Add(5*time.Second))
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d after both horizons", len(f.occ))
	}
}

func TestWithoutDelayedREventStillBlocks(t *testing.T) {
	// A delayed B (timestamp before A, arriving after) must still block:
	// the point of waiting for the horizon.
	f := newFeeder(t, `A() - B()`, MachineOptions{Sources: []string{"s1", "s2"}})
	f.m.Process(f.at(5, "s1", "A"))
	// B occurred at 3s on s2 but arrives later.
	f.m.Process(f.at(3, "s2", "B"))
	f.horizonAll(10, "s1", "s2")
	if len(f.occ) != 0 {
		t.Fatalf("occurrences = %d; delayed earlier B ignored", len(f.occ))
	}
}

func TestWithoutDelayAnnotationTradesCertainty(t *testing.T) {
	// §6.8.3: Delay=δ assumes absence once δ has passed, without
	// waiting for the horizon.
	f := newFeeder(t, `A() - B() {Delay="5s"}`, MachineOptions{Sources: []string{"s1", "s2"}})
	f.m.Process(f.at(2, "s1", "A"))
	f.m.Tick(f.t0.Add(4 * time.Second))
	if len(f.occ) != 0 {
		t.Fatal("fired before delay elapsed")
	}
	f.m.Tick(f.t0.Add(8 * time.Second))
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d after delay", len(f.occ))
	}
}

func TestEntersExample(t *testing.T) {
	// §6.6 Enters(B, R): $Seen(B, R2); Seen(B, R) - Seen(B, R2).
	f := newFeeder(t, `$Seen(B, R2); Seen(B, R) - Seen(B, R2)`, MachineOptions{})
	f.send(1, "Seen", str("b1"), str("T14"))
	f.send(2, "Seen", str("b1"), str("T15")) // b1 enters T15
	f.send(3, "Seen", str("b1"), str("T15")) // still in T15: same room, no Enters
	f.send(4, "Seen", str("b1"), str("T16")) // enters T16
	f.send(20, "Tick")                       // flush horizon
	var rooms []string
	for _, o := range f.occ {
		rooms = append(rooms, o.Env["R"].S)
	}
	if len(rooms) != 2 || rooms[0] != "T15" || rooms[1] != "T16" {
		t.Fatalf("Enters rooms = %v, want [T15 T16]", rooms)
	}
}

func TestTogetherExample(t *testing.T) {
	// §6.6 Together(A, B) with A, B pre-bound: Roger and Giles meet when
	// Giles enters a room Roger is in.
	src := `($Seen(A, R); $Seen(B, R) - Seen(A, R2) {R2 != R}) | ($Seen(B, R); $Seen(A, R) - Seen(B, R2) {R2 != R})`
	n, err := Parse(src, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var occ []Occurrence
	m := NewMachine(n, func(o Occurrence) { occ = append(occ, o) }, MachineOptions{})
	t0 := time.Unix(1000, 0)
	env := value.Env{}.Extend("A", str("roger")).Extend("B", str("giles"))
	m.Start(t0, env)

	at := func(secs int, name string, args ...value.Value) {
		m.Process(event.Event{Name: name, Source: "s", Args: args,
			Time: t0.Add(time.Duration(secs) * time.Second)})
	}
	at(1, "Seen", str("roger"), str("T14"))
	at(2, "Seen", str("giles"), str("T14")) // together in T14
	at(30, "Tick")
	if len(occ) == 0 {
		t.Fatal("meeting not detected")
	}
	if occ[0].Env["R"].S != "T14" {
		t.Fatalf("room = %v", occ[0].Env["R"])
	}
}

func TestTogetherNotDetectedWhenRogerLeft(t *testing.T) {
	src := `$Seen(A, R); $Seen(B, R) - Seen(A, R2) {R2 != R}`
	n, err := Parse(src, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var occ []Occurrence
	m := NewMachine(n, func(o Occurrence) { occ = append(occ, o) }, MachineOptions{})
	t0 := time.Unix(1000, 0)
	m.Start(t0, value.Env{}.Extend("A", str("roger")).Extend("B", str("giles")))
	at := func(secs int, name string, args ...value.Value) {
		m.Process(event.Event{Name: name, Source: "s", Args: args,
			Time: t0.Add(time.Duration(secs) * time.Second)})
	}
	at(1, "Seen", str("roger"), str("T14"))
	at(2, "Seen", str("roger"), str("T15")) // roger moves away
	at(3, "Seen", str("giles"), str("T14")) // giles arrives too late
	at(30, "Tick")
	for _, o := range occ {
		if o.Env["R"].S == "T14" && o.Time == t0.Add(3*time.Second) {
			t.Fatal("stale meeting detected after roger left")
		}
	}
}

func TestTrappedExample(t *testing.T) {
	// §6.6 Trapped(P): Alarm(); (Seen(B) - AllClear()); OwnsBadge(B, P).
	f := newFeeder(t, `Alarm(); (Seen(B) - AllClear()); OwnsBadge(B, P)`, MachineOptions{})
	f.send(1, "Seen", str("b9")) // before the alarm: irrelevant
	f.send(2, "Alarm")
	f.send(3, "Seen", str("b7"))
	f.send(4, "X") // horizon past 3s: the without releases
	f.send(5, "OwnsBadge", str("b7"), str("rjh21"))
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
	if f.occ[0].Env["P"].S != "rjh21" {
		t.Fatalf("trapped person = %v", f.occ[0].Env["P"])
	}
}

func TestTrappedAllClearSuppresses(t *testing.T) {
	f := newFeeder(t, `Alarm(); (Seen(B) - AllClear()); OwnsBadge(B, P)`, MachineOptions{})
	f.send(2, "Alarm")
	f.send(3, "AllClear")
	f.send(4, "Seen", str("b7"))
	f.send(5, "X")
	f.send(6, "OwnsBadge", str("b7"), str("rjh21"))
	if len(f.occ) != 0 {
		t.Fatalf("occurrences = %d after all-clear", len(f.occ))
	}
}

func TestFireDrillExample(t *testing.T) {
	// §6.6: $Alarm() {t := @+60}; AbsTime(t); $OwnsBadge(B, P); Seen(B)
	// — a minute after each alarm, signal badges still being seen.
	f := newFeeder(t, `$Alarm() {t := @+60}; AbsTime(t); $OwnsBadge(B, P); Seen(B)`, MachineOptions{})
	f.send(1, "Alarm")
	// Database lookups modelled as events (§6.3.3).
	f.send(70, "OwnsBadge", str("b7"), str("rjh21"))
	f.send(75, "Seen", str("b7"))
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
	if f.occ[0].Env["P"].S != "rjh21" {
		t.Fatalf("person = %v", f.occ[0].Env["P"])
	}
	// A sighting before the minute elapsed must not have counted: the
	// AbsTime gate only opened at t0+61.
	if f.occ[0].Time.Before(f.t0.Add(61 * time.Second)) {
		t.Fatalf("triggered at %v, before the minute elapsed", f.occ[0].Time)
	}
}

func TestAbsTimeUnboundNeverFires(t *testing.T) {
	f := newFeeder(t, `AbsTime(t)`, MachineOptions{})
	f.send(100, "X")
	if len(f.occ) != 0 {
		t.Fatal("unbound AbsTime fired")
	}
}

func TestNullFiresImmediately(t *testing.T) {
	f := newFeeder(t, `null`, MachineOptions{})
	if len(f.occ) != 1 || f.occ[0].Time != f.t0 {
		t.Fatalf("occ = %v", f.occ)
	}
}

func TestWheneverNullLeastSolution(t *testing.T) {
	// §6.5: $null is the least solution — a single occurrence at s.
	f := newFeeder(t, `$null`, MachineOptions{})
	if len(f.occ) != 1 {
		t.Fatalf("$null occurrences = %d, want 1", len(f.occ))
	}
}

func TestSideExpressionFilters(t *testing.T) {
	f := newFeeder(t, `Withdraw(z) {z > 500}`, MachineOptions{})
	f.send(1, "Withdraw", value.Int(100))
	if len(f.occ) != 0 {
		t.Fatal("filtered event matched")
	}
	f.send(2, "Withdraw", value.Int(600))
	if len(f.occ) != 1 {
		t.Fatal("passing event did not match")
	}
}

func TestSideExpressionInequalityOnVariables(t *testing.T) {
	f := newFeeder(t, `$hit(i); hit(j) {j != i}`, MachineOptions{})
	f.send(1, "hit", str("p1"))
	f.send(2, "hit", str("p1")) // same player: filtered in the inner match
	f.send(3, "hit", str("p2"))
	found := false
	for _, o := range f.occ {
		if o.Env["i"].S == "p1" && o.Env["j"].S == "p2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alternating hit not detected: %v", f.occ)
	}
}

func TestEndOfPointServeFault(t *testing.T) {
	// One clause of the squash example: after the serve, the ball fails
	// to hit the front wall first.
	src := `$serve(s); (floor | wall | hit(i)) - front`
	f := newFeeder(t, src, MachineOptions{})
	f.send(1, "serve", str("alice"))
	f.send(2, "front") // good serve: front wall first
	f.send(3, "floor")
	f.send(4, "X")
	if len(f.occ) != 0 {
		t.Fatalf("point ended on a good serve: %v", f.occ)
	}
	f.send(5, "serve", str("bob"))
	f.send(6, "floor") // fault: floor before front
	f.send(7, "X")
	if len(f.occ) != 1 {
		t.Fatalf("fault not detected: %d", len(f.occ))
	}
}

func TestActiveWatchersBounded(t *testing.T) {
	// §6.7: only events truly of interest are registered; dead beads are
	// collected.
	f := newFeeder(t, `A(); B()`, MachineOptions{})
	if f.m.ActiveWatchers() != 1 {
		t.Fatalf("initial watchers = %d", f.m.ActiveWatchers())
	}
	f.send(1, "A")
	if f.m.ActiveWatchers() != 1 { // now waiting for B
		t.Fatalf("watchers after A = %d", f.m.ActiveWatchers())
	}
	f.send(2, "B")
	if f.m.ActiveWatchers() != 0 {
		t.Fatalf("watchers after completion = %d", f.m.ActiveWatchers())
	}
}

func TestOnRegisterHookSeesInstantiatedTemplates(t *testing.T) {
	var regs []string
	n := MustParse(`OwnsBadge("rjh21", b); Seen(b, s)`, ParseOptions{})
	m := NewMachine(n, func(Occurrence) {}, MachineOptions{
		OnRegister: func(tmpl event.Template) { regs = append(regs, tmpl.String()) },
	})
	t0 := time.Unix(1000, 0)
	m.Start(t0, value.Env{})
	if len(regs) != 1 || regs[0] != `OwnsBadge("rjh21",b)` {
		t.Fatalf("initial registrations = %v", regs)
	}
	m.Process(event.Event{Name: "OwnsBadge", Source: "db",
		Args: []value.Value{str("rjh21"), str("b7")}, Time: t0.Add(time.Second)})
	// The second registration is narrowed by the binding of b (§6.8.1).
	if len(regs) != 2 || regs[1] != `Seen("b7",s)` {
		t.Fatalf("registrations = %v", regs)
	}
}

// TestIndependentVsGlobalView reproduces figure 6.4 (E14): with one
// room's sensor delayed, independent evaluation detects the second
// meeting as soon as its events arrive, while a global-view detector —
// which must process events in timestamp order — blocks on the delayed
// sensor and detects the first meeting first.
func TestIndependentVsGlobalView(t *testing.T) {
	const src = `$Seen("roger", R); Seen("giles", R)`
	t0 := time.Unix(1000, 0)
	ts := func(secs int) time.Time { return t0.Add(time.Duration(secs) * time.Second) }
	mk := func(secs int, room, who string) event.Event {
		return event.Event{Name: "Seen", Source: room,
			Args: []value.Value{str(who), str(room)}, Time: ts(secs)}
	}
	// Meeting 1 in T14 at 1-2s; meeting 2 in T15 at 10-11s. T14's
	// events are delayed and arrive after T15's.
	t14a, t14b := mk(1, "T14", "roger"), mk(2, "T14", "giles")
	t15a, t15b := mk(10, "T15", "roger"), mk(11, "T15", "giles")
	arrival := []event.Event{t15a, t15b, t14a, t14b}

	// Independent evaluation: process in arrival order.
	var indep []string
	mi := NewMachine(MustParse(src, ParseOptions{}),
		func(o Occurrence) { indep = append(indep, o.Env["R"].S) },
		MachineOptions{})
	mi.Start(t0, value.Env{})
	for _, ev := range arrival {
		mi.Process(ev)
	}
	if len(indep) != 2 || indep[0] != "T15" || indep[1] != "T14" {
		t.Fatalf("independent detection order = %v, want [T15 T14]", indep)
	}

	// Global view: buffer and sort by timestamp before processing —
	// nothing is detected until the delayed events arrive, and then the
	// first meeting is reported first.
	var global []string
	mg := NewMachine(MustParse(src, ParseOptions{}),
		func(o Occurrence) { global = append(global, o.Env["R"].S) },
		MachineOptions{})
	mg.Start(t0, value.Env{})
	buffered := append([]event.Event(nil), arrival...)
	// The global-view detector can only process once it has a total
	// order, i.e. after the delayed T14 events arrive.
	for i := 0; i < len(buffered); i++ {
		for j := i + 1; j < len(buffered); j++ {
			if buffered[j].Time.Before(buffered[i].Time) {
				buffered[i], buffered[j] = buffered[j], buffered[i]
			}
		}
	}
	for _, ev := range buffered {
		mg.Process(ev)
	}
	if len(global) != 2 || global[0] != "T14" || global[1] != "T15" {
		t.Fatalf("global-view detection order = %v, want [T14 T15]", global)
	}
	// Both ultimately return the same result set (figure 6.4's note).
	seen := map[string]bool{}
	for _, r := range indep {
		seen[r] = true
	}
	for _, r := range global {
		if !seen[r] {
			t.Fatalf("detectors disagree: %v vs %v", indep, global)
		}
	}
}
