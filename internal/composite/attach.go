package composite

import (
	"sync"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

// Attachment connects a Machine to an event broker: every template a
// strand starts waiting for is registered with the broker — already
// narrowed by bound variables, so "only events that are truly of
// interest are ever registered" (§6.7) — and notifications feed the
// machine, with horizons flowing from every notification.
type Attachment struct {
	m      *Machine
	broker *event.Broker
	sess   uint64

	mu         sync.Mutex
	registered map[string]bool // template strings already registered
	err        error
}

// Attach opens a session on the broker and arranges for the machine's
// registrations to be mirrored there. Call before Machine.Start so
// initial registrations are captured; the machine's OnRegister option
// must be wired with the returned attachment via Hook.
//
// Typical use:
//
//	var at *composite.Attachment
//	m := composite.NewMachine(expr, out, composite.MachineOptions{
//	    Sources:    []string{"SiteA"},
//	    OnRegister: func(t event.Template) { at.Register(t) },
//	})
//	at, err := composite.Attach(m, broker, credentials)
//	m.Start(now, nil)
func Attach(m *Machine, broker *event.Broker, credentials any) (*Attachment, error) {
	a := &Attachment{m: m, broker: broker, registered: make(map[string]bool)}
	sess, err := broker.OpenSession(event.SinkFunc(a.deliver), credentials)
	if err != nil {
		return nil, err
	}
	a.sess = sess
	return a, nil
}

// Register mirrors one machine registration onto the broker,
// de-duplicating by template identity. Safe to call from the machine's
// OnRegister hook.
func (a *Attachment) Register(t event.Template) {
	key := t.String()
	a.mu.Lock()
	if a.registered[key] {
		a.mu.Unlock()
		return
	}
	a.registered[key] = true
	a.mu.Unlock()
	if _, err := a.broker.Register(a.sess, t); err != nil {
		a.mu.Lock()
		a.err = err
		a.mu.Unlock()
	}
}

// Err reports the first registration error, if any.
func (a *Attachment) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Registrations reports how many distinct templates were registered —
// the §6.7 efficiency measure.
func (a *Attachment) Registrations() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.registered)
}

// deliver feeds notifications to the machine. Horizon timestamps flow
// from every notification (heartbeats included), driving the 'without'
// operator and aggregation fixed sections.
func (a *Attachment) deliver(n event.Notification) {
	a.m.ProcessHorizon(n.Source, n.Horizon)
	if !n.Heartbeat {
		a.m.Process(n.Event)
	}
}

// StartAt is a convenience that starts the machine slightly before now,
// so occurrences stamped at the current instant still match (base
// events match strictly after the start time).
func (a *Attachment) StartAt(now time.Time, env value.Env) {
	a.m.Start(now.Add(-time.Nanosecond), env)
}
