package composite

import (
	"strings"
	"testing"
	"time"
)

func parseC(t *testing.T, src string) Node {
	t.Helper()
	n, err := Parse(src, ParseOptions{AggNames: map[string]bool{"COUNT": true}})
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestParsePrecedence(t *testing.T) {
	// §6.6: whenever binds most closely, sequence least.
	n := parseC(t, `$Seen(B, R2); Seen(B, R) - Seen(B, R2)`)
	seq, ok := n.(Seq)
	if !ok {
		t.Fatalf("top = %T", n)
	}
	if _, ok := seq.L.(Whenever); !ok {
		t.Fatalf("seq.L = %T", seq.L)
	}
	w, ok := seq.R.(Without)
	if !ok {
		t.Fatalf("seq.R = %T", seq.R)
	}
	if _, ok := w.L.(Base); !ok {
		t.Fatalf("without.L = %T", w.L)
	}
}

func TestParseOrBindsLooserThanWithout(t *testing.T) {
	// (floor|wall|hit(i)) - front requires parens; floor|wall - front
	// parses as floor | (wall - front).
	n := parseC(t, `floor | wall - front`)
	or, ok := n.(Or)
	if !ok {
		t.Fatalf("top = %T", n)
	}
	if _, ok := or.R.(Without); !ok {
		t.Fatalf("or.R = %T", or.R)
	}
	n2 := parseC(t, `(floor | wall | hit(i)) - front`)
	if _, ok := n2.(Without); !ok {
		t.Fatalf("parenthesised = %T", n2)
	}
}

func TestParseSideExpressions(t *testing.T) {
	n := parseC(t, `Seen(x, y) {x != "rjh21"}`)
	b := n.(Base)
	if len(b.Side) != 1 || b.Side[0].Op != SideNeq || b.Side[0].L != "x" {
		t.Fatalf("side = %+v", b.Side)
	}
	n2 := parseC(t, `Withdraw(z) {z > 500}`)
	if n2.(Base).Side[0].Op != SideGt {
		t.Fatal("gt side lost")
	}
	n3 := parseC(t, `Alarm() {t := @+60}`)
	se := n3.(Base).Side[0]
	if se.Op != SideAssign || !se.R.IsNow || se.R.Offset != 60*time.Second {
		t.Fatalf("assign side = %+v", se)
	}
}

func TestParseDelayAnnotation(t *testing.T) {
	n := parseC(t, `A - B {Delay="5s"}`)
	w := n.(Without)
	if !w.HasDel || w.Delay != 5*time.Second {
		t.Fatalf("without = %+v", w)
	}
}

func TestParseProbabilityAnnotation(t *testing.T) {
	n := parseC(t, `A - B {Probability=90}`)
	w := n.(Without)
	if w.Margin == 0 {
		t.Fatal("probability did not widen margin")
	}
	hi := parseC(t, `A - B {Probability=99}`).(Without)
	lo := parseC(t, `A - B {Probability=10}`).(Without)
	if hi.Margin <= lo.Margin {
		t.Fatal("higher probability should require a wider margin")
	}
}

func TestParseAggregation(t *testing.T) {
	n := parseC(t, `Open(x); COUNT(Deposit(x, y) - Close(x))`)
	seq := n.(Seq)
	agg, ok := seq.R.(Agg)
	if !ok {
		t.Fatalf("seq.R = %T", seq.R)
	}
	if agg.Name != "COUNT" {
		t.Fatalf("agg = %+v", agg)
	}
	if _, ok := agg.E.(Without); !ok {
		t.Fatalf("agg.E = %T", agg.E)
	}
	// Without COUNT in scope it parses as a base event template.
	n2, err := Parse(`COUNT(x)`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n2.(Base); !ok {
		t.Fatalf("unscoped COUNT = %T", n2)
	}
}

func TestParseAbsTimeAndNull(t *testing.T) {
	n := parseC(t, `$Alarm() {t := @+60}; AbsTime(t); $OwnsBadge(B, P); Seen(B)`)
	s := n.(Seq)
	// Left-assoc: ((($Alarm; AbsTime); $Owns); Seen)
	inner := s.L.(Seq).L.(Seq)
	if _, ok := inner.R.(AbsTime); !ok {
		t.Fatalf("AbsTime position = %T", inner.R)
	}
	if _, ok := parseC(t, `null`).(Null); !ok {
		t.Fatal("null did not parse")
	}
}

func TestParseWildcardAndLiterals(t *testing.T) {
	n := parseC(t, `Finished(*) | Finished(27) | Finished("done")`)
	or := n.(Or)
	inner := or.L.(Or)
	if !inner.L.(Base).T.Params[0].Wild {
		t.Fatal("wildcard param lost")
	}
	if inner.R.(Base).T.Params[0].Lit.I != 27 {
		t.Fatal("int literal lost")
	}
	if or.R.(Base).T.Params[0].Lit.S != "done" {
		t.Fatal("string literal lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `(A`, `A;`, `A -`, `A | `, `A {x ~ y}`, `A {x}`,
		`A - B {Delay=5}`, `A - B {Delay="xx"}`, `A - B {Probability=200}`,
		`AbsTime()`, `A("unterminated`, `A !`, `A :`,
	}
	for _, src := range bad {
		if _, err := Parse(src, ParseOptions{}); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	exprs := []string{
		`$Seen(B, R2); Seen(B, R) - Seen(B, R2)`,
		`(A | B) - C`,
		`Alarm() {t := @+60}`,
		`null`,
		`AbsTime(t)`,
	}
	for _, src := range exprs {
		n := parseC(t, src)
		s := n.String()
		if s == "" {
			t.Errorf("String() empty for %q", src)
		}
		// Re-parse the rendering: must yield a parseable expression.
		if _, err := Parse(s, ParseOptions{AggNames: map[string]bool{"COUNT": true}}); err != nil {
			t.Errorf("rendering %q of %q does not re-parse: %v", s, src, err)
		}
	}
}

func TestSquashEndOfPointParses(t *testing.T) {
	// Gehani's end-of-point example, §6.6.
	src := `
$serve(s); (((floor | wall | hit(i)) - front)
  | ($front; ((floor; floor) | front) - hit(i))
  | ($hit(i); (floor | hit(j)) - front)
  | (hit(s) - hit(i) {Delay="1s"})
  | ($hit(i); hit(i) - hit(j)))
`
	n := parseC(t, strings.TrimSpace(strings.ReplaceAll(src, "\n", " ")))
	if _, ok := n.(Seq); !ok {
		t.Fatalf("top = %T", n)
	}
}
