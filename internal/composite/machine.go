package composite

import (
	"fmt"
	"sync"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

// Occurrence is one triggering of a composite event: an occurrence time
// and the environment of variable bindings accumulated during matching
// (§6.5: an evaluation returns a set of (occurrence time, environment)
// tuples — in practice a stream).
type Occurrence struct {
	Time time.Time
	Env  value.Env
}

// Aggregator collates a stream of occurrences (§6.9). OnOccurrence is
// called per sub-event; OnFixed is the meta-event reporting that the
// fixed portion of the queue has grown to t — no occurrence with an
// earlier timestamp can now arrive. Both may emit derived occurrences.
type Aggregator interface {
	OnOccurrence(Occurrence) []Occurrence
	OnFixed(t time.Time) []Occurrence
}

// AggFactory creates an aggregator instance for one evaluation (there
// may be many simultaneous independent evaluations, §6.9).
type AggFactory func(start time.Time, env value.Env) Aggregator

// Machine evaluates one composite expression over a stream of events —
// the push-down machine of §6.7. Each evaluation strand ("bead")
// carries its own environment; strands are independent, so delay in one
// does not block another.
type Machine struct {
	mu sync.Mutex

	expr     Node
	out      func(Occurrence)
	aggTable map[string]AggFactory

	watchers []*watcher
	timers   []*timerEntry
	withouts []*withoutState
	aggs     []*aggState

	declared  map[string]bool
	horizons  map[string]time.Time
	lastEvent time.Time
	curTime   time.Time

	// onRegister, if set, is told each ground template a strand starts
	// waiting for — the hook a client library uses to register interest
	// with event brokers, keeping registrations minimal (§6.7).
	onRegister func(event.Template)

	beads   int // total strands started (for the E16 benchmark)
	matched int
}

// watcher is a bead waiting in a Base state.
type watcher struct {
	active  bool
	persist bool // whenever-over-base: matches every event after `after`
	after   time.Time
	tmpl    event.Template
	side    []SideExpr
	env     value.Env
	emit    func(Occurrence)
}

type timerEntry struct {
	active bool
	at     time.Time
	env    value.Env
	emit   func(Occurrence)
}

type withoutState struct {
	w       Without
	start   time.Time
	rTimes  []time.Time
	pending []Occurrence
	emit    func(Occurrence)
	m       *Machine
	// singleL: the left side is a plain base event, which can fire at
	// most once; once it has and its pending occurrence is resolved, the
	// state is dead and can be collected ("beads are destroyed when no
	// longer required", §6.7).
	singleL bool
	lFired  bool
	done    bool
}

type aggState struct {
	inst  Aggregator
	emit  func(Occurrence)
	fixed time.Time
}

// Options configure a Machine.
type MachineOptions struct {
	// Sources declares the event sources feeding this machine. With
	// sources declared, event absence is only assumed once every
	// source's horizon has passed the instant in question (§6.8.2).
	// With none declared, events are assumed totally ordered and the
	// last processed timestamp is the horizon.
	Sources []string
	// Aggs supplies aggregation functions by name.
	Aggs map[string]AggFactory
	// OnRegister observes template registrations.
	OnRegister func(event.Template)
}

// NewMachine compiles an expression into a runnable machine delivering
// occurrences to out.
func NewMachine(expr Node, out func(Occurrence), opts MachineOptions) *Machine {
	m := &Machine{
		expr:       expr,
		out:        out,
		aggTable:   opts.Aggs,
		declared:   make(map[string]bool),
		horizons:   make(map[string]time.Time),
		onRegister: opts.OnRegister,
	}
	for _, s := range opts.Sources {
		m.declared[s] = true
	}
	return m
}

// Start begins an evaluation at time s with initial environment env
// (which may pre-bind variables, §6.5).
func (m *Machine) Start(s time.Time, env value.Env) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if env == nil {
		env = value.Env{}
	}
	if s.After(m.curTime) {
		m.curTime = s
	}
	m.start(m.expr, s, env, m.out)
}

// start spawns an evaluation strand for node n. Must hold m.mu.
func (m *Machine) start(n Node, s time.Time, env value.Env, emit func(Occurrence)) {
	m.beads++
	switch x := n.(type) {
	case Null:
		emit(Occurrence{Time: s, Env: env})
	case Base:
		w := &watcher{active: true, after: s, tmpl: x.T, side: x.Side, env: env, emit: emit}
		m.watchers = append(m.watchers, w)
		if m.onRegister != nil {
			m.onRegister(x.T.Instantiate(env))
		}
	case Seq:
		m.start(x.L, s, env, func(o Occurrence) {
			m.start(x.R, o.Time, o.Env, emit)
		})
	case Or:
		m.start(x.L, s, env, emit)
		m.start(x.R, s, env, emit)
	case Whenever:
		if b, ok := x.E.(Base); ok {
			// The common case — $ over a base event — is one persistent
			// watcher matching every event after s, each with a fresh
			// binding (§6.4.2). Keeping the original start time means a
			// delayed earlier event still matches, so misordered arrival
			// converges to the same result set (figure 6.4).
			w := &watcher{active: true, persist: true, after: s,
				tmpl: b.T, side: b.Side, env: env, emit: emit}
			m.watchers = append(m.watchers, w)
			if m.onRegister != nil {
				m.onRegister(b.T.Instantiate(env))
			}
			return
		}
		var loop func(time.Time)
		loop = func(from time.Time) {
			m.start(x.E, from, env, func(o Occurrence) {
				emit(o)
				if o.Time.After(from) { // guard against $null divergence
					loop(o.Time)
				}
			})
		}
		loop(s)
	case Without:
		_, singleL := x.L.(Base)
		st := &withoutState{w: x, start: s, emit: emit, m: m, singleL: singleL}
		m.withouts = append(m.withouts, st)
		m.start(x.L, s, env, st.onL)
		m.start(x.R, s, env, st.onR)
	case AbsTime:
		v, ok := env[x.Var]
		if !ok || v.T.Kind != value.KindInt {
			return // unbound timer never fires
		}
		at := time.Unix(0, v.I)
		t := &timerEntry{active: true, at: at, env: env, emit: emit}
		m.timers = append(m.timers, t)
		m.fireTimersLocked()
	case Agg:
		factory, ok := m.aggTable[x.Name]
		if !ok {
			return
		}
		st := &aggState{inst: factory(s, env), emit: emit}
		m.aggs = append(m.aggs, st)
		m.start(x.E, s, env, func(o Occurrence) {
			for _, oo := range st.inst.OnOccurrence(o) {
				emit(oo)
			}
		})
	default:
		panic(fmt.Sprintf("composite: unknown node %T", n))
	}
}

// Process feeds one event into the machine (events may arrive out of
// timestamp order; strands evaluate independently, figure 6.4).
func (m *Machine) Process(ev event.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.Time.After(m.lastEvent) {
		m.lastEvent = ev.Time
	}
	if ev.Time.After(m.curTime) {
		m.curTime = ev.Time
	}
	// Fire due timers before matching, so an evaluation gated on an
	// absolute time sees events that carry the clock past it — the
	// machine-internal analogue of retrospective registration (§6.8.1).
	m.fireTimersLocked()
	snapshot := m.watchers
	for _, w := range snapshot {
		if !w.active || !ev.Time.After(w.after) {
			continue
		}
		env, ok := w.tmpl.Match(ev, w.env)
		if !ok {
			continue
		}
		env, ok = applySide(w.side, env, ev.Time)
		if !ok {
			continue
		}
		if !w.persist {
			w.active = false
		}
		m.matched++
		w.emit(Occurrence{Time: ev.Time, Env: env})
	}
	m.advanceLocked()
	m.compactLocked()
}

// ProcessHorizon records an event-horizon timestamp from a source
// (§6.8.2): no event with an earlier stamp will arrive from it.
func (m *Machine) ProcessHorizon(source string, t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.After(m.horizons[source]) {
		m.horizons[source] = t
	}
	if t.After(m.curTime) {
		m.curTime = t
	}
	m.advanceLocked()
}

// Tick advances the machine's notion of current time (for Delay-based
// releases and AbsTime timers).
func (m *Machine) Tick(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now.After(m.curTime) {
		m.curTime = now
	}
	m.advanceLocked()
}

// minHorizon is the instant up to which the event stream is known
// complete: the minimum across declared sources, or the last processed
// event time when no sources are declared (total order assumption).
func (m *Machine) minHorizon() time.Time {
	if len(m.declared) == 0 {
		return m.lastEvent
	}
	var minT time.Time
	first := true
	for src := range m.declared {
		h := m.horizons[src]
		if first || h.Before(minT) {
			minT = h
			first = false
		}
	}
	return minT
}

// advanceLocked releases pending without-occurrences and fires timers
// and aggregation meta-events after any time/horizon progress.
func (m *Machine) advanceLocked() {
	m.fireTimersLocked()
	for _, st := range m.withouts {
		if !st.done {
			st.advance()
		}
	}
	// Aggregators' fixed boundary trails the horizon by ε: an operator
	// such as 'without' only releases an occurrence at time t once the
	// horizon passes t, so occurrences exactly at the horizon may still
	// be in flight inside the machine.
	fixed := m.minHorizon()
	if !fixed.IsZero() {
		fixed = fixed.Add(-time.Nanosecond)
		for _, ag := range m.aggs {
			if fixed.After(ag.fixed) {
				ag.fixed = fixed
				for _, oo := range ag.inst.OnFixed(fixed) {
					ag.emit(oo)
				}
			}
		}
	}
}

func (m *Machine) fireTimersLocked() {
	for _, t := range m.timers {
		if t.active && !t.at.After(m.curTime) {
			t.active = false
			t.emit(Occurrence{Time: t.at, Env: t.env})
		}
	}
}

// compactLocked drops dead watchers and timers ("beads are destroyed
// when no longer required", §6.7).
func (m *Machine) compactLocked() {
	if len(m.watchers) > 64 {
		live := m.watchers[:0]
		for _, w := range m.watchers {
			if w.active {
				live = append(live, w)
			}
		}
		m.watchers = live
	}
	if len(m.timers) > 64 {
		live := m.timers[:0]
		for _, t := range m.timers {
			if t.active {
				live = append(live, t)
			}
		}
		m.timers = live
	}
	if len(m.withouts) > 64 {
		live := m.withouts[:0]
		for _, st := range m.withouts {
			if !st.done {
				live = append(live, st)
			}
		}
		m.withouts = live
	}
}

// ActiveWatchers reports the live registrations (§6.7: only events that
// are truly of interest are ever registered).
func (m *Machine) ActiveWatchers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.watchers {
		if w.active {
			n++
		}
	}
	return n
}

// Stats reports strand and match counts.
func (m *Machine) Stats() (beads, matched int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.beads, m.matched
}

// onL handles an occurrence of the left side of a without.
func (st *withoutState) onL(o Occurrence) {
	st.lFired = true
	if st.blocked(o.Time) {
		st.refreshDone()
		return
	}
	if st.certain(o.Time) {
		st.emit(o)
		st.refreshDone()
		return
	}
	st.pending = append(st.pending, o)
}

// refreshDone marks the state collectable once nothing more can happen.
func (st *withoutState) refreshDone() {
	if st.singleL && st.lFired && len(st.pending) == 0 {
		st.done = true
	}
}

// onR records an occurrence of the right side and kills blocked pending
// occurrences (the semantics of 'without', §6.5).
func (st *withoutState) onR(o Occurrence) {
	st.rTimes = append(st.rTimes, o.Time)
	live := st.pending[:0]
	for _, p := range st.pending {
		if !st.blocked(p.Time) {
			live = append(live, p)
		}
	}
	st.pending = live
	st.refreshDone()
}

// blocked reports whether an R occurrence at or before tL (within the
// clock-drift margin, §6.8.4) has been seen.
func (st *withoutState) blocked(tL time.Time) bool {
	limit := tL.Add(st.w.Margin)
	for _, tR := range st.rTimes {
		if !tR.After(limit) {
			return true
		}
	}
	return false
}

// certain reports whether absence of an earlier R occurrence can now be
// assumed: the event horizon has passed tL (plus margin), or the Delay
// annotation's deadline has expired (§6.8.3: trading correctness).
func (st *withoutState) certain(tL time.Time) bool {
	if st.m.minHorizon().After(tL.Add(st.w.Margin)) {
		return true
	}
	if st.w.HasDel && !st.m.curTime.Before(tL.Add(st.w.Delay)) {
		return true
	}
	return false
}

// advance releases pending occurrences that have become certain.
func (st *withoutState) advance() {
	var release []Occurrence
	live := st.pending[:0]
	for _, p := range st.pending {
		switch {
		case st.blocked(p.Time):
			// drop
		case st.certain(p.Time):
			release = append(release, p)
		default:
			live = append(live, p)
		}
	}
	st.pending = live
	for _, o := range release {
		st.emit(o)
	}
	st.refreshDone()
}

// applySide evaluates side expressions (§6.5.1) against the matched
// environment; now is the matched event's timestamp (the '@' value).
func applySide(side []SideExpr, env value.Env, now time.Time) (value.Env, bool) {
	for _, se := range side {
		rv, ok := sideValue(se.R, env, now)
		if !ok {
			return nil, false
		}
		if se.Op == SideAssign {
			env = env.Extend(se.L, rv)
			continue
		}
		lv, bound := env[se.L]
		if !bound {
			return nil, false
		}
		if !compareSide(se.Op, lv, rv) {
			return nil, false
		}
	}
	return env, true
}

func sideValue(t SideTerm, env value.Env, now time.Time) (value.Value, bool) {
	switch {
	case t.IsNow:
		return value.Int(now.Add(t.Offset).UnixNano()), true
	case t.Var != "":
		v, ok := env[t.Var]
		return v, ok
	case t.Lit != nil:
		return *t.Lit, true
	default:
		return value.Value{}, false
	}
}

func compareSide(op SideOp, l, r value.Value) bool {
	switch op {
	case SideEq:
		return l.Equal(r)
	case SideNeq:
		return !l.Equal(r)
	}
	if !l.T.Equal(r.T) {
		return false
	}
	var c int
	switch l.T.Kind {
	case value.KindInt:
		switch {
		case l.I < r.I:
			c = -1
		case l.I > r.I:
			c = 1
		}
	case value.KindString:
		switch {
		case l.S < r.S:
			c = -1
		case l.S > r.S:
			c = 1
		}
	default:
		return false
	}
	switch op {
	case SideLt:
		return c < 0
	case SideLe:
		return c <= 0
	case SideGt:
		return c > 0
	case SideGe:
		return c >= 0
	default:
		return false
	}
}
