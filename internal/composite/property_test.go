package composite

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

// TestQuickEntersMatchesOracle: for any in-order sequence of sightings
// of one badge, the Enters detector fires exactly when the room differs
// from the previous sighting's room — an independent oracle over random
// walks (the §6.6 semantics, machine vs straight-line code).
func TestQuickEntersMatchesOracle(t *testing.T) {
	f := func(walk []uint8) bool {
		if len(walk) == 0 {
			return true
		}
		n := MustParse(`$Seen("b", R2); Seen("b", R) - Seen("b", R2)`, ParseOptions{})
		var got []string
		m := NewMachine(n, func(o Occurrence) { got = append(got, o.Env["R"].S) }, MachineOptions{})
		t0 := time.Unix(1000, 0)
		m.Start(t0, value.Env{})

		rooms := []string{"T14", "T15", "T16"}
		var want []string
		prev := ""
		for i, w := range walk {
			room := rooms[int(w)%len(rooms)]
			if prev != "" && room != prev {
				want = append(want, room)
			}
			prev = room
			m.Process(event.Event{
				Name:   "Seen",
				Source: "s",
				Args:   []value.Value{value.Str("b"), value.Str(room)},
				Time:   t0.Add(time.Duration(i+1) * time.Second),
			})
		}
		// Flush the final pending detections past the horizon.
		m.Process(event.Event{Name: "flush", Source: "s",
			Time: t0.Add(time.Duration(len(walk)+10) * time.Second)})

		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTogetherSymmetric: the two-sided Together expression detects
// a meeting independent of arrival order of the two people, for random
// interleavings of two walks.
func TestQuickTogetherSymmetric(t *testing.T) {
	const src = `($Seen(A, R); $Seen(B, R) - Seen(A, R2) {R2 != R}) | ($Seen(B, R); $Seen(A, R) - Seen(B, R2) {R2 != R})`
	f := func(walkA, walkB []uint8, interleave []bool) bool {
		n := MustParse(src, ParseOptions{})
		detected := map[string]bool{}
		m := NewMachine(n, func(o Occurrence) {
			detected[o.Env["R"].S] = true
		}, MachineOptions{})
		t0 := time.Unix(1000, 0)
		m.Start(t0, value.Env{}.Extend("A", value.Str("a")).Extend("B", value.Str("b")))

		rooms := []string{"T14", "T15"}
		where := map[string]string{}
		step := 0
		send := func(who string, w uint8) {
			step++
			room := rooms[int(w)%len(rooms)]
			where[who] = room
			m.Process(event.Event{
				Name:   "Seen",
				Source: "s",
				Args:   []value.Value{value.Str(who), value.Str(room)},
				Time:   t0.Add(time.Duration(step) * time.Second),
			})
		}
		// Oracle: a meeting in room r happens when both are in r at once.
		oracle := map[string]bool{}
		ia, ib := 0, 0
		for _, pickA := range interleave {
			if pickA && ia < len(walkA) {
				send("a", walkA[ia])
				ia++
			} else if ib < len(walkB) {
				send("b", walkB[ib])
				ib++
			}
			if where["a"] != "" && where["a"] == where["b"] {
				oracle[where["a"]] = true
			}
		}
		m.Process(event.Event{Name: "flush", Source: "s",
			Time: t0.Add(time.Duration(step+10) * time.Second)})

		// Every oracle meeting must be detected. (The detector may also
		// report a room the oracle saw — never a room it did not.)
		for r := range oracle {
			if !detected[r] {
				return false
			}
		}
		for r := range detected {
			if !oracle[r] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(fmt.Sprintf("together property: %v", err))
	}
}
