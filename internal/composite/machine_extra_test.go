package composite

import (
	"testing"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

func TestLeavesExample(t *testing.T) {
	// §6.6 Leaves(B, R2): identical to Enters except the old location is
	// signalled.
	f := newFeeder(t, `$Seen(B, R2); Seen(B, R) - Seen(B, R2)`, MachineOptions{})
	f.send(1, "Seen", str("b1"), str("T14"))
	f.send(2, "Seen", str("b1"), str("T15"))
	f.send(20, "Tick")
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
	// R2 carries the room left, R the room entered.
	if f.occ[0].Env["R2"].S != "T14" || f.occ[0].Env["R"].S != "T15" {
		t.Fatalf("leaves binding = %v", f.occ[0].Env)
	}
}

func TestRuntimeDriftMargin(t *testing.T) {
	// §6.8.4: with a high required probability of correct ordering, an R
	// occurrence just *after* L (within the drift margin) still blocks.
	f := newFeeder(t, `A() - B() {Probability=99}`, MachineOptions{})
	// Margin at 99% is 990ms: B at +2.5s is within the margin of A at 2s.
	f.m.Process(f.at(2, "s1", "A"))
	f.m.Process(event.Event{Name: "B", Source: "s2",
		Time: f.t0.Add(2500 * time.Millisecond)})
	f.send(20, "Tick")
	if len(f.occ) != 0 {
		t.Fatalf("occurrences = %d; drift margin ignored", len(f.occ))
	}
	// Without the probability requirement, timestamp order decides.
	g := newFeeder(t, `A() - B()`, MachineOptions{})
	g.m.Process(g.at(2, "s1", "A"))
	g.m.Process(event.Event{Name: "B", Source: "s2",
		Time: g.t0.Add(2500 * time.Millisecond)})
	g.send(20, "Tick")
	if len(g.occ) != 1 {
		t.Fatalf("plain without occurrences = %d", len(g.occ))
	}
}

func TestWheneverOverComplexExpression(t *testing.T) {
	// The general $ form: a new evaluation starts each time the previous
	// completes — here over a sequence.
	f := newFeeder(t, `$(A(); B())`, MachineOptions{})
	f.send(1, "A")
	f.send(2, "B") // completes; a new evaluation starts from t=2
	f.send(3, "A")
	f.send(4, "B")
	f.send(5, "B") // no pending A: ignored
	if len(f.occ) != 2 {
		t.Fatalf("occurrences = %d, want 2", len(f.occ))
	}
}

func TestMultiSourceHorizonIsMinimum(t *testing.T) {
	f := newFeeder(t, `A() - B()`, MachineOptions{Sources: []string{"s1", "s2", "s3"}})
	f.m.Process(f.at(2, "s1", "A"))
	f.horizonAll(10, "s1", "s2")
	if len(f.occ) != 0 {
		t.Fatal("released while s3's horizon is unknown")
	}
	f.m.ProcessHorizon("s3", f.t0.Add(1*time.Second))
	if len(f.occ) != 0 {
		t.Fatal("released while s3's horizon is behind")
	}
	f.m.ProcessHorizon("s3", f.t0.Add(3*time.Second))
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d after all horizons pass", len(f.occ))
	}
}

func TestHorizonRegressionDoesNotRewind(t *testing.T) {
	f := newFeeder(t, `A() - B()`, MachineOptions{Sources: []string{"s1"}})
	f.m.ProcessHorizon("s1", f.t0.Add(10*time.Second))
	f.m.ProcessHorizon("s1", f.t0.Add(5*time.Second)) // stale: ignored
	f.m.Process(f.at(2, "s1", "A"))
	if len(f.occ) != 1 {
		t.Fatalf("occurrences = %d (horizon rewound?)", len(f.occ))
	}
}

func TestSequenceRequiresStrictlyAfter(t *testing.T) {
	// A; B with B carrying the same timestamp as A does not satisfy the
	// sequence (occurrence times are strictly ordered per source).
	n := MustParse(`A(); B()`, ParseOptions{})
	var occ []Occurrence
	m := NewMachine(n, func(o Occurrence) { occ = append(occ, o) }, MachineOptions{})
	t0 := time.Unix(1000, 0)
	m.Start(t0, value.Env{})
	m.Process(event.Event{Name: "A", Source: "s", Time: t0.Add(time.Second)})
	m.Process(event.Event{Name: "B", Source: "s2", Time: t0.Add(time.Second)})
	if len(occ) != 0 {
		t.Fatal("equal-timestamp B satisfied the sequence")
	}
	m.Process(event.Event{Name: "B", Source: "s", Time: t0.Add(2 * time.Second)})
	if len(occ) != 1 {
		t.Fatal("later B did not satisfy the sequence")
	}
}

func TestStartWithPreBoundEnvironment(t *testing.T) {
	// §6.5: evaluation is defined over an initial environment E; a
	// pre-bound variable restricts matching.
	n := MustParse(`Seen(b, r)`, ParseOptions{})
	var occ []Occurrence
	m := NewMachine(n, func(o Occurrence) { occ = append(occ, o) }, MachineOptions{})
	t0 := time.Unix(1000, 0)
	m.Start(t0, value.Env{}.Extend("b", value.Str("b7")))
	m.Process(event.Event{Name: "Seen", Source: "s",
		Args: []value.Value{value.Str("b9"), value.Str("T14")}, Time: t0.Add(time.Second)})
	if len(occ) != 0 {
		t.Fatal("pre-bound variable ignored")
	}
	m.Process(event.Event{Name: "Seen", Source: "s",
		Args: []value.Value{value.Str("b7"), value.Str("T14")}, Time: t0.Add(2 * time.Second)})
	if len(occ) != 1 {
		t.Fatal("matching event missed")
	}
}

func TestCompactionKeepsLiveWatchers(t *testing.T) {
	// Force compaction past the 64-watcher threshold and verify a live
	// persistent watcher still fires afterwards.
	f := newFeeder(t, `$Seen(B, R)`, MachineOptions{})
	for i := 0; i < 200; i++ {
		f.send(i+1, "Seen", str("b"), str("T14"))
	}
	if len(f.occ) != 200 {
		t.Fatalf("occurrences = %d", len(f.occ))
	}
}

func TestWithoutNestedInSequenceChains(t *testing.T) {
	// front; (floor; floor) - hit(i): the double-bounce clause of the
	// squash example.
	f := newFeeder(t, `front; (floor; floor) - hit(i)`, MachineOptions{})
	f.send(1, "front")
	f.send(2, "floor")
	f.send(3, "hit", str("p1")) // player reached it: no point-end
	f.send(4, "floor")
	f.send(20, "Tick")
	if len(f.occ) != 0 {
		t.Fatalf("double bounce signalled despite hit: %v", f.occ)
	}
	g := newFeeder(t, `front; (floor; floor) - hit(i)`, MachineOptions{})
	g.send(1, "front")
	g.send(2, "floor")
	g.send(3, "floor")
	g.send(20, "Tick")
	if len(g.occ) != 1 {
		t.Fatalf("double bounce not signalled: %d", len(g.occ))
	}
}

func TestBeadStatsGrow(t *testing.T) {
	f := newFeeder(t, `$Seen(B, R2); Seen(B, R) - Seen(B, R2)`, MachineOptions{})
	b0, m0 := f.m.Stats()
	f.send(1, "Seen", str("b1"), str("T14"))
	f.send(2, "Seen", str("b1"), str("T15"))
	b1, m1 := f.m.Stats()
	if b1 <= b0 || m1 <= m0 {
		t.Fatalf("stats did not grow: %d/%d -> %d/%d", b0, m0, b1, m1)
	}
}
