package passwd

import (
	"errors"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

func setup(t *testing.T) (*Service, *bus.Network, *clock.Virtual, *ids.HostAuthority) {
	t.Helper()
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)
	pw, err := New("Pw", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.SetPassword("dm", "sesame"); err != nil {
		t.Fatal(err)
	}
	return pw, net, clk, ids.NewHostAuthority("ely", clk.Now())
}

func TestAuthenticate(t *testing.T) {
	pw, _, _, host := setup(t)
	c := host.NewDomain()
	rmc, err := pw.Authenticate(c, "dm", "sesame", "Login")
	if err != nil {
		t.Fatal(err)
	}
	if !rmc.Args[0].Equal(value.Object("Login.userid", "dm")) ||
		!rmc.Args[1].Equal(value.Str("Login")) {
		t.Fatalf("args = %v", rmc.Args)
	}
	if err := pw.Oasis().Validate(rmc, c); err != nil {
		t.Fatal(err)
	}
}

func TestAuthenticateFailures(t *testing.T) {
	pw, _, _, host := setup(t)
	c := host.NewDomain()
	if _, err := pw.Authenticate(c, "dm", "wrong", "Login"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("wrong password: %v", err)
	}
	if _, err := pw.Authenticate(c, "ghost", "sesame", "Login"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("unknown user: %v", err)
	}
}

func TestChangePassword(t *testing.T) {
	pw, _, _, host := setup(t)
	c := host.NewDomain()
	old, err := pw.Authenticate(c, "dm", "sesame", "Login")
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.ChangePassword("dm", "open-sesame"); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Authenticate(c, "dm", "sesame", "Login"); !errors.Is(err, ErrBadPassword) {
		t.Fatal("old password still works")
	}
	if _, err := pw.Authenticate(c, "dm", "open-sesame", "Login"); err != nil {
		t.Fatal(err)
	}
	// Outstanding proofs survive until revoked.
	if err := pw.Oasis().Validate(old, c); err != nil {
		t.Fatal(err)
	}
	if err := pw.Revoke(old); err != nil {
		t.Fatal(err)
	}
	if err := pw.Oasis().Validate(old, c); err == nil {
		t.Fatal("revoked proof still valid")
	}
	if err := pw.ChangePassword("ghost", "x"); err == nil {
		t.Fatal("change for unknown user accepted")
	}
}

// TestFourLevelLogin is the complete §3.4.3 example: a login service
// grades logins by host trust, consuming Passwd certificates, with the
// "maximum permissible level" rolefile variant.
func TestFourLevelLogin(t *testing.T) {
	pw, net, clk, _ := setup(t)
	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The l parameter grades the login: 3 secure host, 2 known host,
	// 1 unknown host with a password, 0 unchecked visitor claim. The
	// reserved @host variable is the authenticated client host.
	if err := login.AddRolefile("main", `
def Login(l, u, h) l: integer u: Login.userid h: string
Login(3, u, @host) <- Pw.Passwd(u, "Login")* : @host in secure
Login(2, u, @host) <- Pw.Passwd(u, "Login")* : @host in hosts
Login(1, u, @host) <- Pw.Passwd(u, "Login")*
Login(0, u, @host) <-
`); err != nil {
		t.Fatal(err)
	}
	login.Groups().AddMember("console1", "secure")
	login.Groups().AddMember("console1", "hosts")
	login.Groups().AddMember("lab-pc", "hosts")

	// Without explicit args, the first matching rule gives the maximum
	// level for the host.
	enter := func(host string) (*cert.RMC, ids.ClientID) {
		ha := ids.NewHostAuthority(host, clk.Now())
		c := ha.NewDomain()
		proof, err := pw.Authenticate(c, "dm", "sesame", "Login")
		if err != nil {
			t.Fatal(err)
		}
		rmc, err := login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "Login",
			Creds: []*cert.RMC{proof},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rmc, c
	}
	secure, _ := enter("console1")
	if secure.Args[0].I != 3 {
		t.Fatalf("console1 level = %d, want 3", secure.Args[0].I)
	}
	known, _ := enter("lab-pc")
	if known.Args[0].I != 2 {
		t.Fatalf("lab-pc level = %d, want 2", known.Args[0].I)
	}
	unknown, _ := enter("cafe-laptop")
	if unknown.Args[0].I != 1 {
		t.Fatalf("cafe level = %d, want 1", unknown.Args[0].I)
	}

	// A visitor claim carries level 0 and needs no password; @host in
	// the head is bound from the client identifier, so the claimed args
	// must agree with the authenticated origin.
	ha := ids.NewHostAuthority("anon", clk.Now())
	c := ha.NewDomain()
	visitor, err := login.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "Login",
		Args: []value.Value{value.Int(0), value.Object("Login.userid", "dm"), value.Str("anon")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if visitor.Args[0].I != 0 {
		t.Fatalf("visitor level = %d", visitor.Args[0].I)
	}

	// A password proof revoked at Pw kills graded logins through the
	// starred candidate (cross-service revocation again).
	rmc, cl := enter("console1")
	if err := login.Validate(rmc, cl); err != nil {
		t.Fatal(err)
	}
	if secure.Args[2].S != "console1" {
		t.Fatalf("host arg = %v", secure.Args[2])
	}
}
