// Package passwd implements the central password service of §3.4.3 of
// the paper: it maintains user authentication secrets and, after a
// discourse with the client, issues Passwd(userid, key) role membership
// certificates that any other service requiring user authentication —
// such as a login service — accepts as credentials. Certificate
// issuance uses the direct-issue mechanism of §4.12 (the policy "the
// client knows the secret" is not expressible in RDL).
package passwd

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// ErrBadPassword is returned when authentication fails. It is
// deliberately indistinguishable between unknown user and wrong secret.
var ErrBadPassword = errors.New("passwd: authentication failed")

// Service is the password service.
type Service struct {
	svc     *oasis.Service
	secrets map[string]credential
}

type credential struct {
	salt [16]byte
	hash [32]byte
}

// rolefile declares the Passwd role: the userid authenticated and the
// key naming what the certificate is for (e.g. "Login"), so a password
// proof for one purpose cannot be replayed for another (§3.4.3).
const rolefile = `
def Passwd(u, key) u: Login.userid key: string
Passwd(u, key) <-
`

// New creates a password service named "Pw" on the network.
func New(name string, clk clock.Clock, net *bus.Network) (*Service, error) {
	svc, err := oasis.New(name, clk, net, oasis.Options{})
	if err != nil {
		return nil, err
	}
	if err := svc.AddRolefile("main", rolefile); err != nil {
		return nil, err
	}
	return &Service{svc: svc, secrets: make(map[string]credential)}, nil
}

// Oasis exposes the underlying OASIS service (other services resolve
// the Passwd role types through it).
func (s *Service) Oasis() *oasis.Service { return s.svc }

// SetPassword stores a salted hash of the user's secret.
func (s *Service) SetPassword(user, password string) error {
	var c credential
	if _, err := rand.Read(c.salt[:]); err != nil {
		return fmt.Errorf("passwd: salt: %w", err)
	}
	c.hash = hashPassword(c.salt, password)
	s.secrets[user] = c
	return nil
}

func hashPassword(salt [16]byte, password string) [32]byte {
	m := hmac.New(sha256.New, salt[:])
	m.Write([]byte(password))
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

// Authenticate performs the client discourse: on a correct secret it
// issues a Passwd(user, key) certificate bound to the client.
func (s *Service) Authenticate(client ids.ClientID, user, password, key string) (*cert.RMC, error) {
	c, ok := s.secrets[user]
	if !ok {
		return nil, ErrBadPassword
	}
	got := hashPassword(c.salt, password)
	if !hmac.Equal(got[:], c.hash[:]) {
		return nil, ErrBadPassword
	}
	return s.svc.IssueDirect(client, "main", "Passwd", []value.Value{
		value.Object("Login.userid", user),
		value.Str(key),
	})
}

// Revoke withdraws a previously issued certificate (e.g. when the
// password is changed and outstanding proofs must die).
func (s *Service) Revoke(c *cert.RMC) error { return s.svc.RevokeDirect(c) }

// ChangePassword updates the secret. Certificates already issued remain
// valid until revoked or expired; callers wanting forced re-proof use
// Revoke on the outstanding certificates.
func (s *Service) ChangePassword(user, password string) error {
	if _, ok := s.secrets[user]; !ok {
		return ErrBadPassword
	}
	return s.SetPassword(user, password)
}
