package credrec

import (
	"testing"
	"testing/quick"
)

// dagSpec deterministically describes a random DAG: nLeaves leaf facts
// followed by derived records whose parents are chosen among earlier
// records.
type dagSpec struct {
	nLeaves int
	derived []derivedSpec
}

type derivedSpec struct {
	op      Op
	parents []int // indices into the record list
	negate  []bool
}

// buildDag constructs the store from a spec.
func buildDag(spec dagSpec, leafStates []State) (*Store, []Ref) {
	st := NewStore()
	refs := make([]Ref, 0, spec.nLeaves+len(spec.derived))
	for i := 0; i < spec.nLeaves; i++ {
		refs = append(refs, st.NewFact(leafStates[i]))
	}
	for _, d := range spec.derived {
		ps := make([]Parent, len(d.parents))
		for j, pi := range d.parents {
			ps[j] = Parent{Ref: refs[pi], Negated: d.negate[j]}
		}
		refs = append(refs, st.NewDerived(d.op, ps...))
	}
	return st, refs
}

// decodeSpec turns raw fuzz bytes into a well-formed DAG spec.
func decodeSpec(raw []byte) (dagSpec, []State, [][2]byte) {
	spec := dagSpec{nLeaves: 2}
	var leafStates []State
	var mutations [][2]byte
	if len(raw) > 0 {
		spec.nLeaves = 1 + int(raw[0]%5)
	}
	states := []State{False, True, Unknown}
	for i := 0; i < spec.nLeaves; i++ {
		s := True
		if i < len(raw) {
			s = states[int(raw[i])%3]
		}
		leafStates = append(leafStates, s)
	}
	ops := []Op{OpAnd, OpOr, OpNand, OpNor}
	i := spec.nLeaves
	total := spec.nLeaves
	for i+2 < len(raw) && total < 24 {
		nP := 1 + int(raw[i]%3)
		d := derivedSpec{op: ops[int(raw[i+1])%4]}
		for j := 0; j < nP; j++ {
			k := i + 2 + j
			pb := byte(j)
			if k < len(raw) {
				pb = raw[k]
			}
			d.parents = append(d.parents, int(pb)%total)
			d.negate = append(d.negate, pb%7 == 0)
		}
		spec.derived = append(spec.derived, d)
		total++
		i += 2 + nP
	}
	// Remaining bytes are leaf mutations (leaf index, new state).
	for ; i+1 < len(raw); i += 2 {
		mutations = append(mutations, [2]byte{raw[i], raw[i+1]})
	}
	return spec, leafStates, mutations
}

// TestQuickDAGPropagation: after any sequence of leaf state changes on
// any DAG, every record's state equals an independent recursive
// evaluation — counter-based propagation never drifts.
func TestQuickDAGPropagation(t *testing.T) {
	states := []State{False, True, Unknown}
	f := func(raw []byte) bool {
		spec, leafStates, mutations := decodeSpec(raw)
		st, refs := buildDag(spec, leafStates)

		cur := append([]State(nil), leafStates...)
		var oracle func(i int) State
		oracle = func(i int) State {
			if i < spec.nLeaves {
				return cur[i]
			}
			d := spec.derived[i-spec.nLeaves]
			unknown := false
			var s State
			switch d.op {
			case OpAnd, OpNand:
				s = True
				for j, pi := range d.parents {
					switch effective(oracle(pi), d.negate[j]) {
					case False:
						s = False
					case Unknown:
						unknown = true
					}
				}
			case OpOr, OpNor:
				s = False
				for j, pi := range d.parents {
					switch effective(oracle(pi), d.negate[j]) {
					case True:
						s = True
					case Unknown:
						unknown = true
					}
				}
			}
			if unknown && ((d.op == OpAnd || d.op == OpNand) && s != False ||
				(d.op == OpOr || d.op == OpNor) && s != True) {
				s = Unknown
			}
			if d.op == OpNand || d.op == OpNor {
				s = effective(s, true)
			}
			return s
		}
		check := func() bool {
			for i, r := range refs {
				got, err := st.Lookup(r)
				if err != nil {
					return false
				}
				if got != oracle(i) {
					return false
				}
			}
			return true
		}
		if !check() {
			return false
		}
		for _, m := range mutations {
			li := int(m[0]) % spec.nLeaves
			ns := states[int(m[1])%3]
			if err := st.SetState(refs[li], ns); err != nil {
				return false
			}
			cur[li] = ns
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSweepSafety: sweeping never changes the observable validity
// of reachable-and-true records, and dangling references after a sweep
// always read as revoked.
func TestQuickSweepSafety(t *testing.T) {
	f := func(raw []byte) bool {
		spec, leafStates, mutations := decodeSpec(raw)
		st, refs := buildDag(spec, leafStates)
		// Mark every record direct-use, as certificates would.
		for _, r := range refs {
			if err := st.MarkDirectUse(r); err != nil {
				return false
			}
		}
		for _, m := range mutations {
			li := int(m[0]) % spec.nLeaves
			if m[1]%2 == 0 {
				_ = st.SetState(refs[li], False)
			} else {
				_ = st.Invalidate(refs[li])
			}
		}
		before := make([]bool, len(refs))
		for i, r := range refs {
			before[i] = st.Valid(r)
		}
		st.Sweep()
		for i, r := range refs {
			after := st.Valid(r)
			if before[i] != after {
				// A sweep may only turn validity off for records that
				// were already false (deleted); never on.
				if after && !before[i] {
					return false
				}
				if before[i] && !after {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
