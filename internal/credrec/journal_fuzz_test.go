package credrec

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzJournalReplay hammers the recovery path with arbitrary byte
// streams. The invariants: Replay never panics, never loops, and for
// every input either returns a well-formed store or a wrapped
// ErrJournalCorrupt — and whatever store it returns must itself
// survive a journal round trip (replaying what a LoggedStore journals
// from the recovered state reproduces it).
func FuzzJournalReplay(f *testing.F) {
	// Golden seeds: real journals produced by a LoggedStore.
	seed := func(ops func(*LoggedStore)) []byte {
		var journal bytes.Buffer
		ls := NewLoggedStore(&journal)
		ops(ls)
		if err := ls.Sync(); err != nil {
			f.Fatal(err)
		}
		ls.Close()
		return journal.Bytes()
	}
	full := seed(func(ls *LoggedStore) {
		login := ls.NewExternal("login", True)
		fact := ls.NewFact(True)
		member := ls.NewDerived(OpAnd, Of(login), Of(fact))
		guard := ls.NewDerived(OpNor, Not(member))
		_ = ls.MakePermanent(fact)
		_ = ls.MarkDirectUse(member)
		_ = ls.MarkNotify(guard)
		_ = ls.MarkAutoRevoke(member)
		_ = ls.SetState(login, Unknown)
		_ = ls.Invalidate(fact)
		ls.MarkSourceUnknown("login")
		ls.MarkSourceFailsafe("login")
		ls.Sweep()
	})
	f.Add(full)
	f.Add(full[:len(full)-3]) // torn tail
	f.Add(seed(func(ls *LoggedStore) {}))
	f.Add(seed(func(ls *LoggedStore) { ls.NewFact(True) }))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x00, 0x01}) // 1-byte record, bad CRC
	f.Add([]byte("gibberish text journal\nfact 2\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Replay(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("Replay error %v does not wrap ErrJournalCorrupt", err)
			}
			return
		}
		// The recovered store is internally consistent: its own journal
		// round-trips. Re-journal a mutation on top to exercise the
		// recovered allocator too.
		var journal bytes.Buffer
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("recovered store is not usable: %v", r)
				}
			}()
			var snap bytes.Buffer
			if err := st.WriteSnapshot(&snap); err != nil {
				t.Fatalf("snapshotting recovered store: %v", err)
			}
			st2, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatalf("reloading recovered store's snapshot: %v", err)
			}
			ls := NewLoggedStoreWith(st2, writerSink{&journal}, JournalOptions{})
			defer ls.Close()
			ls.NewFact(True)
			ls.Sweep()
			if err := ls.Sync(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := ReplayInto(st, bytes.NewReader(journal.Bytes()), true); err != nil {
				t.Fatalf("tail journaled from recovered state does not replay onto it: %v", err)
			}
			if !bytes.Equal(st.Image(), ls.Store.Image()) {
				t.Fatal("recovered store diverged from its own journal round trip")
			}
		}()
	})
}
