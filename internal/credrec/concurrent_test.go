package credrec

import (
	"fmt"
	"sync"
	"testing"
)

// These tests pin down the striped store's concurrency contract (see
// the package comment's lock-order notes); they are meaningful under
// -race and assert the user-visible guarantees directly.

// TestConcurrentAllocAndValidate allocates from many goroutines while
// readers hammer Valid; every reference handed out must be distinct and
// resolve to its own record.
func TestConcurrentAllocAndValidate(t *testing.T) {
	st := NewStore()
	const goroutines, perG = 8, 500
	refs := make([][]Ref, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ref := st.NewFact(True)
				if !st.Valid(ref) {
					t.Error("fresh record invalid")
					return
				}
				refs[g] = append(refs[g], ref)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[Ref]bool)
	for _, rs := range refs {
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("duplicate reference %v handed out", r)
			}
			seen[r] = true
			if !st.Valid(r) {
				t.Fatalf("record %v invalid after the dust settled", r)
			}
		}
	}
	if live := st.Live(); live != goroutines*perG {
		t.Fatalf("live count %d, want %d", live, goroutines*perG)
	}
}

// TestInvalidateVisibleToReaders checks the revocation guarantee the
// engine depends on: once Invalidate returns, every reader — on any
// goroutine — sees the whole dependent subgraph false. Derived records
// are placed several shards away from their parents, so the assertion
// crosses stripe boundaries.
func TestInvalidateVisibleToReaders(t *testing.T) {
	st := NewStore()
	const chains = 64
	roots := make([]Ref, chains)
	leaves := make([]Ref, chains)
	for i := range roots {
		roots[i] = st.NewFact(True)
		ref := roots[i]
		for d := 0; d < 5; d++ {
			ref = st.NewDerived(OpAnd, Of(ref))
		}
		leaves[i] = ref
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					// Reads may race the cascade itself; they must never
					// panic or misread, but truth can be either way.
					st.Valid(leaves[(g*17+i)%chains])
				}
			}
		}(g)
	}
	for i := 0; i < chains; i++ {
		if err := st.Invalidate(roots[i]); err != nil {
			t.Fatal(err)
		}
		// The cascade completed before Invalidate returned.
		if st.Valid(leaves[i]) {
			t.Fatalf("leaf %d still valid after its root was invalidated", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentSetStateChurn flips independent leaves from many
// goroutines while readers watch derived children; after the churn
// stops, every child must agree with its leaf's final state.
func TestConcurrentSetStateChurn(t *testing.T) {
	st := NewStore()
	const leaves = 32
	leaf := make([]Ref, leaves)
	child := make([]Ref, leaves)
	for i := range leaf {
		leaf[i] = st.NewFact(True)
		child[i] = st.NewDerived(OpAnd, Of(leaf[i]))
	}
	var wg sync.WaitGroup
	final := make([]State, leaves)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				n := (g*leaves/8 + i) % leaves
				s := True
				if i%2 == 1 {
					s = False
				}
				if err := st.SetState(leaf[n], s); err != nil {
					t.Errorf("SetState: %v", err)
					return
				}
				st.Valid(child[n])
			}
		}(g)
	}
	wg.Wait()
	for i := range leaf {
		ls, err := st.Lookup(leaf[i])
		if err != nil {
			t.Fatal(err)
		}
		final[i] = ls
		cs, err := st.Lookup(child[i])
		if err != nil {
			t.Fatal(err)
		}
		if cs != ls {
			t.Fatalf("child %d is %v but its only parent is %v", i, cs, ls)
		}
	}
}

// TestGroupsConcurrent churns membership on one set of groups while
// readers test another; the interesting-credential records must track
// the final membership.
func TestGroupsConcurrent(t *testing.T) {
	st := NewStore()
	g := NewGroups(st)
	const users = 16
	creds := make([]Ref, users)
	for i := 0; i < users; i++ {
		g.AddMember(user(i), "staff")
		creds[i] = g.CredentialFor(user(i), "staff")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				u := user((w + i) % users)
				switch i % 3 {
				case 0:
					g.RemoveMember(u, "staff")
				case 1:
					g.AddMember(u, "staff")
				default:
					g.IsMember(u, "staff")
					st.Valid(creds[(w+i)%users])
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < users; i++ {
		g.AddMember(user(i), "staff") // settle everyone in
		if !g.IsMember(user(i), "staff") {
			t.Fatalf("user %d lost after churn", i)
		}
		if !st.Valid(creds[i]) {
			t.Fatalf("membership credential %d false after final AddMember", i)
		}
	}
}

func user(i int) string { return fmt.Sprintf("u%d", i) }
