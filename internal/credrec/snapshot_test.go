package credrec

import (
	"bytes"
	"errors"
	"testing"
)

// buildComplexStore exercises every field the snapshot must carry:
// facts, externals, derived records with negated parents, permanence,
// the notify/direct-use/auto-revoke flags, revocation cascades, and a
// sweep that leaves populated free lists.
func buildComplexStore() (*Store, []Ref) {
	st := NewStore()
	login := st.NewExternal("login", True)
	conf := st.NewExternal("conf", Unknown)
	fact := st.NewFact(True)
	member := st.NewDerived(OpAnd, Of(login), Of(fact))
	guard := st.NewDerived(OpNor, Not(conf))
	_ = st.MakePermanent(fact)
	_ = st.MarkDirectUse(member)
	_ = st.MarkNotify(guard)
	_ = st.MarkAutoRevoke(member)
	var dead []Ref
	for i := 0; i < 20; i++ {
		dead = append(dead, st.NewFact(True))
	}
	for _, d := range dead {
		_ = st.Invalidate(d)
	}
	st.Sweep()
	st.MarkSourceUnknown("conf")
	return st, []Ref{login, conf, fact, member, guard}
}

func TestSnapshotRoundtrip(t *testing.T) {
	st, refs := buildComplexStore()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Image(), got.Image()) {
		t.Fatalf("restored image differs:\n-- original --\n%s\n-- restored --\n%s", st.Image(), got.Image())
	}
	for _, r := range refs {
		ws, wp, werr := st.Resolve(r)
		gs, gp, gerr := got.Resolve(r)
		if ws != gs || wp != gp || (werr == nil) != (gerr == nil) {
			t.Fatalf("ref %v: restored %v/%v/%v, want %v/%v/%v", r, gs, gp, gerr, ws, wp, werr)
		}
	}
	// Cascades still propagate in the restored store (children links
	// and effective counters survived).
	if err := got.SetState(refs[0], False); err != nil { // login external
		t.Fatal(err)
	}
	if got.Valid(refs[3]) {
		t.Fatal("restored store does not cascade revocation")
	}
}

// The load-bearing property: a snapshot captures the allocator, so the
// restored store's future is identical — same refs minted, same slots
// reused by the next sweep.
func TestSnapshotAllocationDeterminism(t *testing.T) {
	st, _ := buildComplexStore()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		a, b := st.NewFact(True), restored.NewFact(True)
		if a != b {
			t.Fatalf("allocation %d diverged: %v vs %v", i, a, b)
		}
	}
	va := st.NewDerived(OpOr, Of(st.ExternalRefs("login")[0]))
	vb := restored.NewDerived(OpOr, Of(restored.ExternalRefs("login")[0]))
	if va != vb {
		t.Fatalf("derived allocation diverged: %v vs %v", va, vb)
	}
	if sa, sb := st.Sweep(), restored.Sweep(); sa != sb {
		t.Fatalf("sweep diverged: %d vs %d records", sa, sb)
	}
	if !bytes.Equal(st.Image(), restored.Image()) {
		t.Fatal("images diverged after identical post-snapshot operations")
	}
}

func TestSnapshotCorruption(t *testing.T) {
	st, _ := buildComplexStore()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Any single-byte flip is detected (magic, payload or checksum).
	for _, pos := range []int{0, 7, 8, len(full) / 2, len(full) - 1} {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0xff
		if _, err := ReadSnapshot(bytes.NewReader(corrupt)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("flip at byte %d: %v, want ErrSnapshotCorrupt", pos, err)
		}
	}
	// Truncation is detected.
	for _, cut := range []int{0, 4, len(full) / 2, len(full) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("truncation to %d bytes: %v, want ErrSnapshotCorrupt", cut, err)
		}
	}
	// Trailing garbage is detected (the CRC moves).
	if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), full...), 0xAB))); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Error("trailing garbage went undetected")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.NewFact(True); got != NewStore().NewFact(True) {
		t.Fatalf("empty-snapshot store allocates differently: %v", got)
	}
}
