package credrec

import "testing"

func TestGroupMembershipCredential(t *testing.T) {
	st := NewStore()
	g := NewGroups(st)
	g.AddMember("dm", "staff")

	ref := g.CredentialFor("dm", "staff")
	if !st.Valid(ref) {
		t.Fatal("membership credential for member not true")
	}
	// Same lookup returns the same interesting record.
	if ref2 := g.CredentialFor("dm", "staff"); ref2 != ref {
		t.Fatalf("second lookup minted new record %v != %v", ref2, ref)
	}

	// §3.2.3: removing dm from staff revokes the role membership whose
	// rule depended on it.
	member := st.NewDerived(OpAnd, Of(ref))
	g.RemoveMember("dm", "staff")
	if st.Valid(member) {
		t.Fatal("role membership survived group change")
	}
	g.AddMember("dm", "staff")
	if !st.Valid(member) {
		t.Fatal("role membership did not recover on re-add")
	}
}

func TestGroupCredentialForNonMember(t *testing.T) {
	st := NewStore()
	g := NewGroups(st)
	ref := g.CredentialFor("stranger", "staff")
	if st.Valid(ref) {
		t.Fatal("non-member credential true")
	}
	g.AddMember("stranger", "staff")
	if !st.Valid(ref) {
		t.Fatal("credential not updated on later join")
	}
}

func TestGroupIsMember(t *testing.T) {
	g := NewGroups(NewStore())
	if g.IsMember("a", "g") {
		t.Fatal("empty groups report membership")
	}
	g.AddMember("a", "g")
	if !g.IsMember("a", "g") {
		t.Fatal("added member not reported")
	}
	g.RemoveMember("a", "g")
	if g.IsMember("a", "g") {
		t.Fatal("removed member still reported")
	}
}

func TestGroupInterestingStaysSmall(t *testing.T) {
	// §4.8.1: no record is stored for memberships nobody asked about.
	st := NewStore()
	g := NewGroups(st)
	for i := 0; i < 100; i++ {
		g.AddMember(string(rune('a'+i%26)), "staff")
	}
	if g.Interesting() != 0 {
		t.Fatalf("interesting = %d before any lookup", g.Interesting())
	}
	g.CredentialFor("a", "staff")
	g.CredentialFor("b", "staff")
	if g.Interesting() != 2 {
		t.Fatalf("interesting = %d, want 2", g.Interesting())
	}
}

func TestGroupCompact(t *testing.T) {
	st := NewStore()
	g := NewGroups(st)
	ref := g.CredentialFor("a", "staff") // false: not a member
	if err := st.Invalidate(ref); err != nil {
		t.Fatal(err)
	}
	st.Sweep()
	g.Compact()
	if g.Interesting() != 0 {
		t.Fatal("compact kept swept record")
	}
	// A fresh lookup mints a new record.
	ref2 := g.CredentialFor("a", "staff")
	if ref2 == ref {
		t.Fatal("fresh lookup returned dangling record")
	}
}
