// Package credrec implements OASIS credential records (sections 4.5-4.8
// of the paper): small records representing a server's current belief
// about some fact, linked into a directed graph so that a change in the
// value of one credential propagates to the certificates and services
// that depend on it. This is the basis of rapid, selective revocation.
//
// Records live in a table; (table index, magic) forms a reference that is
// unique over the life of the service, so a dangling reference is
// detected rather than misread (figure 4.7, [Lo94 6.4]). Child records
// hold counters of how many parents are true, false or unknown instead of
// back pointers; this is all that is needed to set a record's state.
//
// # Concurrency
//
// The table is striped into numShards segments; global index i lives in
// shard i%numShards. The validation hot path (Lookup/Valid — §4.6's
// single credential-record check) takes only that shard's read lock to
// resolve the slot, then atomically loads the record's published
// state, so reads of unrelated records never contend with each other
// or with writes to other shards. Mutations (allocation, state
// changes, flag sets, sweep) are serialised by a store-wide writeMu;
// allocation and sweep additionally take the write lock of the shard
// whose slot table they rewrite, one shard at a time. The propagation
// walk itself touches no shard locks: each record's reader-visible
// state+permanence pair lives in a single atomic word (record.sp),
// published before the record's slot becomes reachable and rewritten
// atomically on every transition.
//
// Lock order (deadlock freedom): writeMu is always acquired first;
// with writeMu held, at most ONE shard lock is held at any moment, and
// only for slot-table surgery (alloc, sweep, flag sets). Readers take
// a single shard read lock and nothing else. Fields read on the read
// path under the shard lock (slot.magic, slot.rec, record.external,
// record.autoRev and the flag bits) are only written under the owning
// shard's write lock; record.sp is atomic; graph-structure fields
// (children, parent counters, the mutator-owned state/permanent pair)
// are only touched by mutators, which writeMu already serialises.
// Because propagation is synchronous under writeMu and sp stores are
// sequentially consistent, when Invalidate returns every dependent
// record is already published false: a later Valid on any goroutine
// fails. Change notifications are queued under writeMu and fired after
// it is released, so ChangeFunc callbacks may re-enter the store.
package credrec

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
)

// State is a record's current truth value. Unknown models network
// failure: the value cannot currently be confirmed (§4.10).
type State int

// Record states.
const (
	False State = iota + 1
	True
	Unknown
)

// String names the state.
func (s State) String() string {
	switch s {
	case True:
		return "true"
	case False:
		return "false"
	case Unknown:
		return "unknown"
	default:
		return "state(" + strconv.Itoa(int(s)) + ")"
	}
}

// Op is the binary operation a derived record performs on the effective
// truth values of its parents (§4.7). "Not" is an attribute of the
// parent→child edge, not an operation.
type Op int

// Derived-record operations.
const (
	OpAnd Op = iota + 1
	OpOr
	OpNand
	OpNor
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpNand:
		return "nand"
	case OpNor:
		return "nor"
	default:
		return "op(" + strconv.Itoa(int(o)) + ")"
	}
}

// Ref is a credential record reference: the 64-bit (index, magic)
// identifier embedded in certificates (the CRR field of figure 4.2).
type Ref struct {
	Index uint32
	Magic uint32
}

// Uint64 packs the reference into the 8-byte wire form.
func (r Ref) Uint64() uint64 { return uint64(r.Index)<<32 | uint64(r.Magic) }

// RefFromUint64 unpacks a wire-form reference.
func RefFromUint64(u uint64) Ref {
	return Ref{Index: uint32(u >> 32), Magic: uint32(u)}
}

// String renders the reference.
func (r Ref) String() string { return fmt.Sprintf("crr:%d.%d", r.Index, r.Magic) }

// Parent designates a parent record, optionally via a negating edge.
type Parent struct {
	Ref     Ref
	Negated bool
}

// Not marks a negating edge to the given record.
func Not(r Ref) Parent { return Parent{Ref: r, Negated: true} }

// Of marks a plain edge to the given record.
func Of(r Ref) Parent { return Parent{Ref: r} }

// ErrDangling is returned when a reference's magic does not match the
// table slot: the record has been deleted (its fact is permanently
// false) or never existed.
var ErrDangling = errors.New("credrec: dangling credential record reference")

type childLink struct {
	ref     Ref
	negated bool
}

type record struct {
	ref Ref
	op  Op

	// sp is the published (state, permanent) pair readers load without
	// any lock: state in the low byte, permBit above it. state and
	// permanent below are the mutator-owned master copy, read and
	// written only under Store.writeMu; every change is mirrored into
	// sp via publish.
	sp        atomic.Uint32
	state     State
	permanent bool

	notify    bool // another service is using this credential
	directUse bool // a certificate embeds this credential
	autoRev   bool // revoke if a parent exits its role
	external  string

	children []childLink

	// Effective (post edge-negation) parent counters.
	nParents  int
	effTrue   int
	effFalse  int
	effUnk    int
	permTrue  int // effective-true parents that are permanent
	permFalse int
}

// permBit flags permanence in record.sp; the low byte holds the State.
const permBit = 1 << 8

// publish mirrors the mutator-owned state/permanent pair into the
// atomic word readers load. Caller holds Store.writeMu (or the record
// is not yet reachable).
func (r *record) publish() {
	v := uint32(r.state)
	if r.permanent {
		v |= permBit
	}
	r.sp.Store(v)
}

type slot struct {
	magic uint32
	rec   *record // nil when free
}

// numShards is the number of lock stripes; a power of two so the
// index→shard map is a mask. 16 comfortably exceeds the core counts we
// target while keeping the sweep/iteration cost negligible.
const numShards = 16

// shard is one lock stripe of the record table. Local position p holds
// the record with global index p*numShards + (shard id).
type shard struct {
	mu    sync.RWMutex
	slots []slot
	free  []uint32 // global indices available for reuse in this shard
}

// get resolves a reference within this shard; callers must hold sh.mu
// (readers: read lock; mutators additionally hold Store.writeMu, which
// makes an unlocked read safe — see getMut).
func (sh *shard) get(ref Ref) (*record, error) {
	p := int(ref.Index / numShards)
	if p >= len(sh.slots) {
		return nil, ErrDangling
	}
	s := sh.slots[p]
	if s.rec == nil || s.magic != ref.Magic {
		return nil, ErrDangling
	}
	return s.rec, nil
}

// ChangeFunc observes state changes of records whose Notify flag is set;
// the oasis layer uses it to drive cross-service event notification
// (§4.9.2). permanent reports that the value will never change again.
type ChangeFunc func(ref Ref, s State, permanent bool)

type pendingChange struct {
	ref  Ref
	s    State
	perm bool
}

// Store is a server's credential record table.
type Store struct {
	// writeMu serialises all mutations; see the package comment for the
	// full lock order. The fields below it are mutator-only state.
	writeMu   sync.Mutex
	nalloc    uint64 // allocations so far; round-robin shard choice
	totalFree int    // sum of len(shard.free), to keep reuse-before-grow
	onChange  ChangeFunc
	pending   []pendingChange // notifications queued during propagation

	shards [numShards]shard

	// stats
	created atomic.Uint64
	deleted atomic.Uint64
}

// NewStore creates an empty credential record store.
func NewStore() *Store { return &Store{} }

func (st *Store) shardFor(index uint32) *shard {
	return &st.shards[index%numShards]
}

// OnChange installs the change observer for Notify-flagged records.
func (st *Store) OnChange(f ChangeFunc) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	st.onChange = f
}

// alloc places r in the table and assigns its reference. Caller holds
// writeMu. Shard choice is round-robin over the allocation count, but a
// freed slot anywhere is reused before any shard grows — both rules are
// functions of the operation order alone, keeping allocation
// deterministic for journal replay (persist.go).
func (st *Store) alloc(r *record) Ref {
	start := st.nalloc % numShards
	st.nalloc++
	shardID := uint32(start)
	if st.totalFree > 0 {
		for i := uint64(0); i < numShards; i++ {
			if len(st.shards[(start+i)%numShards].free) > 0 {
				shardID = uint32((start + i) % numShards)
				break
			}
		}
	}
	sh := &st.shards[shardID]
	sh.mu.Lock()
	if n := len(sh.free); n > 0 {
		idx := sh.free[n-1]
		sh.free = sh.free[:n-1]
		st.totalFree--
		p := idx / numShards
		sh.slots[p].magic++ // never reuse a reference
		sh.slots[p].rec = r
		r.ref = Ref{Index: idx, Magic: sh.slots[p].magic}
	} else {
		p := uint32(len(sh.slots))
		sh.slots = append(sh.slots, slot{magic: 1, rec: r})
		r.ref = Ref{Index: p*numShards + shardID, Magic: 1}
	}
	sh.mu.Unlock()
	st.created.Add(1)
	return r.ref
}

// getMut resolves a reference on the mutation path. Caller holds
// writeMu — the only writers of slot contents also hold writeMu, and
// readers never write them, so no shard lock is needed to look at the
// slot here.
func (st *Store) getMut(ref Ref) (*record, error) {
	return st.shardFor(ref.Index).get(ref)
}

// NewFact creates a leaf record asserting a simple fact with the given
// initial state.
func (st *Store) NewFact(s State) Ref {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	r := &record{state: s}
	r.publish() // before alloc makes the slot reachable
	return st.alloc(r)
}

// NewExternal creates a surrogate record for a fact held by another
// service (§4.9.1). Its state is maintained by event notification via
// SetState; source records where the remote fact lives.
func (st *Store) NewExternal(source string, s State) Ref {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	r := &record{state: s, external: source}
	r.publish() // before alloc makes the slot reachable
	return st.alloc(r)
}

// NewDerived creates a record computing op over the effective values of
// the given parents, links it beneath them, and returns its reference.
// Any dangling parent makes the new record permanently false (the fact it
// depended on has been revoked).
func (st *Store) NewDerived(op Op, parents ...Parent) Ref {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	r := &record{op: op, nParents: len(parents)}
	// First pass: tally parent contributions and compute the initial
	// state, all before alloc makes the slot reachable — writeMu keeps
	// the parents still while we look.
	broken := false
	for _, p := range parents {
		pr, err := st.getMut(p.Ref)
		if err != nil {
			broken = true
			continue
		}
		eff := effective(pr.state, p.Negated)
		r.count(eff, +1, pr.permanent)
	}
	if broken {
		r.state, r.permanent = False, true
	} else {
		r.state = r.compute()
		r.permanent = r.decided()
	}
	r.publish()
	ref := st.alloc(r)
	// Second pass: link beneath the parents now that the ref exists.
	for _, p := range parents {
		if pr, err := st.getMut(p.Ref); err == nil {
			pr.children = append(pr.children, childLink{ref: ref, negated: p.Negated})
		}
	}
	return ref
}

// effective applies edge negation to a parent state.
func effective(s State, negated bool) State {
	if !negated {
		return s
	}
	switch s {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

func (r *record) count(eff State, d int, permanent bool) {
	switch eff {
	case True:
		r.effTrue += d
		if permanent {
			r.permTrue += d
		}
	case False:
		r.effFalse += d
		if permanent {
			r.permFalse += d
		}
	case Unknown:
		r.effUnk += d
	}
}

// compute derives the record's state from its counters (§4.8: counters
// of the number of parents that are true, false or unknown are all that
// is required).
func (r *record) compute() State {
	var s State
	switch r.op {
	case OpAnd, OpNand:
		switch {
		case r.effFalse > 0:
			s = False
		case r.effUnk > 0:
			s = Unknown
		default:
			s = True
		}
	case OpOr, OpNor:
		switch {
		case r.effTrue > 0:
			s = True
		case r.effUnk > 0:
			s = Unknown
		default:
			s = False
		}
	default: // leaf records have no op; state is set directly
		return r.state
	}
	if r.op == OpNand || r.op == OpNor {
		s = effective(s, true)
	}
	return s
}

// decided reports whether the record's value can never change again:
// either a dominant parent is permanent, or all parents are permanent.
func (r *record) decided() bool {
	switch r.op {
	case OpAnd, OpNand:
		if r.permFalse > 0 {
			return true
		}
	case OpOr, OpNor:
		if r.permTrue > 0 {
			return true
		}
	default:
		return r.permanent
	}
	return r.permTrue+r.permFalse == r.nParents
}

// SetState sets the state of a leaf or external record and propagates the
// change through the graph. It fails on derived records (their state is
// a function of their parents) and on permanent records.
func (st *Store) SetState(ref Ref, s State) error {
	st.writeMu.Lock()
	r, err := st.getMut(ref)
	if err != nil {
		st.writeMu.Unlock()
		return err
	}
	if r.nParents > 0 {
		st.writeMu.Unlock()
		return fmt.Errorf("credrec: %v is derived; its state follows its parents", ref)
	}
	if r.permanent {
		st.writeMu.Unlock()
		return fmt.Errorf("credrec: %v is permanent", ref)
	}
	st.transition(r, s, false)
	st.writeMu.Unlock()
	st.drain()
	return nil
}

// Invalidate makes a record permanently false: the credential is revoked
// and can never return (§4.6: "credential records representing facts
// that are false, and will always remain false, can be deleted"). The
// change cascades. Invalidate on a derived record is permitted — it is
// how an explicit revocation deletes a delegation record.
func (st *Store) Invalidate(ref Ref) error {
	st.writeMu.Lock()
	r, err := st.getMut(ref)
	if err != nil {
		st.writeMu.Unlock()
		return err
	}
	st.transition(r, False, true)
	st.writeMu.Unlock()
	st.drain()
	return nil
}

// MakePermanent freezes a record at its current state.
func (st *Store) MakePermanent(ref Ref) error {
	st.writeMu.Lock()
	r, err := st.getMut(ref)
	if err != nil {
		st.writeMu.Unlock()
		return err
	}
	st.transition(r, r.state, true)
	st.writeMu.Unlock()
	st.drain()
	return nil
}

// transition applies a state/permanence change to r and recursively
// updates children via their counters. Caller holds writeMu and no
// shard lock; the reader-visible rewrite of each visited record is a
// single atomic publish, so the cascade costs no lock operations
// beyond writeMu itself (see the package comment's lock order).
// Notifications for Notify-flagged records are queued; public entry
// points drain them after unlocking.
func (st *Store) transition(r *record, s State, makePermanent bool) {
	if r.permanent {
		return
	}
	old := r.state
	if old == s && !makePermanent {
		return
	}
	r.state = s
	if makePermanent {
		r.permanent = true
	}
	r.publish()
	if r.notify && st.onChange != nil {
		st.pending = append(st.pending, pendingChange{ref: r.ref, s: r.state, perm: r.permanent})
	}
	for _, cl := range r.children {
		cr, err := st.getMut(cl.ref)
		if err != nil {
			continue
		}
		if cr.permanent {
			continue
		}
		oldEff := effective(old, cl.negated)
		newEff := effective(s, cl.negated)
		// The old contribution was counted while this parent was still
		// non-permanent; the new one carries the new permanence.
		cr.count(oldEff, -1, false)
		cr.count(newEff, +1, r.permanent)
		ns := cr.compute()
		nperm := cr.decided()
		if ns != cr.state || nperm {
			st.transition(cr, ns, nperm)
		}
	}
}

// drain fires queued change notifications; callers must not hold any
// store lock (callbacks may re-enter the store).
func (st *Store) drain() {
	for {
		st.writeMu.Lock()
		if len(st.pending) == 0 {
			st.writeMu.Unlock()
			return
		}
		batch := st.pending
		st.pending = nil
		f := st.onChange
		st.writeMu.Unlock()
		if f == nil {
			return
		}
		for _, p := range batch {
			f(p.ref, p.s, p.perm)
		}
	}
}

// Lookup returns the record's current state. A dangling reference
// returns ErrDangling, which callers treat as permanently false.
func (st *Store) Lookup(ref Ref) (State, error) {
	sh := st.shardFor(ref.Index)
	sh.mu.RLock()
	r, err := sh.get(ref)
	sh.mu.RUnlock()
	if err != nil {
		return False, err
	}
	return State(r.sp.Load() &^ permBit), nil
}

// Valid reports whether the record exists and is currently true. This is
// the single check a server performs on each access (§4.6: "only a
// single credential record need be consulted to confirm an arbitrary
// number of facts"). It takes one shard read lock and nothing else, so
// validations proceed in parallel across cores.
func (st *Store) Valid(ref Ref) bool {
	s, err := st.Lookup(ref)
	return err == nil && s == True
}

// Flag setters. MarkDirectUse records that a certificate embeds the
// credential; MarkNotify that another service uses it; MarkAutoRevoke
// that it should be revoked if a parent exits its role (figure 4.7).
func (st *Store) MarkDirectUse(ref Ref) error {
	return st.setFlag(ref, func(r *record) { r.directUse = true })
}

// MarkNotify flags the record for cross-service change notification.
func (st *Store) MarkNotify(ref Ref) error {
	return st.setFlag(ref, func(r *record) { r.notify = true })
}

// MarkAutoRevoke flags the record for revocation on parent role exit.
func (st *Store) MarkAutoRevoke(ref Ref) error {
	return st.setFlag(ref, func(r *record) { r.autoRev = true })
}

func (st *Store) setFlag(ref Ref, f func(*record)) error {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	r, err := st.getMut(ref)
	if err != nil {
		return err
	}
	sh := st.shardFor(ref.Index)
	sh.mu.Lock()
	f(r)
	sh.mu.Unlock()
	return nil
}

// AutoRevoke reports the auto-revoke flag.
func (st *Store) AutoRevoke(ref Ref) bool {
	sh := st.shardFor(ref.Index)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, err := sh.get(ref)
	return err == nil && r.autoRev
}

// External returns the source service of an external record ("" for
// local records).
func (st *Store) External(ref Ref) string {
	sh := st.shardFor(ref.Index)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, err := sh.get(ref)
	if err != nil {
		return ""
	}
	return r.external
}

// MarkSourceUnknown marks every external record from the given source as
// Unknown; used when a heartbeat from that source is missed (§4.10).
// The unknown state propagates to children and possibly other servers.
func (st *Store) MarkSourceUnknown(source string) int {
	st.writeMu.Lock()
	n := 0
	for si := range st.shards {
		for _, sl := range st.shards[si].slots {
			r := sl.rec
			if r == nil || r.external != source || r.permanent || r.state == Unknown {
				continue
			}
			st.transition(r, Unknown, false)
			n++
		}
	}
	st.writeMu.Unlock()
	st.drain()
	return n
}

// MarkSourceFailsafe moves every non-permanent external record from the
// given source to False — NOT permanently: the fact may still hold, the
// holder simply cannot confirm it. This is the §6.8.4 fail-safe
// escalation beyond MarkSourceUnknown: after enough missed heartbeats
// the source is presumed failed and everything depending on it stops
// validating until a resync restores the true states. Records already
// False (or permanent) are skipped. The change cascades.
func (st *Store) MarkSourceFailsafe(source string) int {
	st.writeMu.Lock()
	n := 0
	for si := range st.shards {
		for _, sl := range st.shards[si].slots {
			r := sl.rec
			if r == nil || r.external != source || r.permanent || r.state == False {
				continue
			}
			st.transition(r, False, false)
			n++
		}
	}
	st.writeMu.Unlock()
	st.drain()
	return n
}

// Resolve returns the record's current state and permanence with a
// single lock-free load (the resync responder's read). A dangling
// reference reports (False, permanent): the fact was revoked and swept.
func (st *Store) Resolve(ref Ref) (State, bool, error) {
	sh := st.shardFor(ref.Index)
	sh.mu.RLock()
	r, err := sh.get(ref)
	sh.mu.RUnlock()
	if err != nil {
		return False, true, err
	}
	v := r.sp.Load()
	return State(v &^ permBit), v&permBit != 0, nil
}

// ExternalRefs lists the live external records for a source, so a server
// can re-read their states when a connection is re-established.
func (st *Store) ExternalRefs(source string) []Ref {
	var out []Ref
	for si := range st.shards {
		sh := &st.shards[si]
		sh.mu.RLock()
		for _, sl := range sh.slots {
			if r := sl.rec; r != nil && r.external == source {
				out = append(out, r.ref)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Sweep garbage-collects (§4.8): it unlinks parent→child edges from
// permanent records and deletes records that are permanent-and-false, or
// uninteresting (no direct use, no notify flag, no children). It returns
// the number of records deleted.
func (st *Store) Sweep() int {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	deleted := 0
	for si := range st.shards {
		sh := &st.shards[si]
		sh.mu.Lock()
		for p := range sh.slots {
			r := sh.slots[p].rec
			if r == nil {
				continue
			}
			if r.permanent {
				// Children's counters already carry this record's final
				// contribution; the links are redundant.
				r.children = nil
			}
			uninteresting := !r.directUse && !r.notify && len(r.children) == 0
			if (r.permanent && r.state == False) || (uninteresting && r.permanent) || (uninteresting && r.nParents == 0 && r.external == "" && r.state == False) {
				sh.slots[p].rec = nil
				sh.free = append(sh.free, uint32(p*numShards+si))
				st.totalFree++
				deleted++
				st.deleted.Add(1)
			}
		}
		sh.mu.Unlock()
	}
	return deleted
}

// Image renders every live record as one text line in global index
// order: a deterministic fingerprint of the store's entire state. Two
// stores that evolved through the same logical history — an original
// and its journal replay, or peers that have resynchronised — produce
// byte-identical images; the chaos and persistence suites compare them
// directly.
func (st *Store) Image() []byte {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	maxSlots := 0
	for si := range st.shards {
		if n := len(st.shards[si].slots); n > maxSlots {
			maxSlots = n
		}
	}
	var b bytes.Buffer
	// Global index p*numShards+si ascends with p outer, si inner.
	for p := 0; p < maxSlots; p++ {
		for si := 0; si < numShards; si++ {
			sh := &st.shards[si]
			if p >= len(sh.slots) || sh.slots[p].rec == nil {
				continue
			}
			r := sh.slots[p].rec
			flags := ""
			if r.notify {
				flags += "n"
			}
			if r.directUse {
				flags += "d"
			}
			if r.autoRev {
				flags += "a"
			}
			fmt.Fprintf(&b, "%s op=%d state=%s perm=%t ext=%q flags=%q parents=%d children=%d\n",
				r.ref, r.op, r.state, r.permanent, r.external, flags, r.nParents, len(r.children))
		}
	}
	return b.Bytes()
}

// Live reports the number of live records (for tests and benchmarks).
func (st *Store) Live() int {
	n := 0
	for si := range st.shards {
		sh := &st.shards[si]
		sh.mu.RLock()
		for _, sl := range sh.slots {
			if sl.rec != nil {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Stats reports cumulative creations and deletions.
func (st *Store) Stats() (created, deleted uint64) {
	return st.created.Load(), st.deleted.Load()
}
