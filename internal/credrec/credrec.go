// Package credrec implements OASIS credential records (sections 4.5-4.8
// of the paper): small records representing a server's current belief
// about some fact, linked into a directed graph so that a change in the
// value of one credential propagates to the certificates and services
// that depend on it. This is the basis of rapid, selective revocation.
//
// Records live in a table; (table index, magic) forms a reference that is
// unique over the life of the service, so a dangling reference is
// detected rather than misread (figure 4.7, [Lo94 6.4]). Child records
// hold counters of how many parents are true, false or unknown instead of
// back pointers; this is all that is needed to set a record's state.
package credrec

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
)

// State is a record's current truth value. Unknown models network
// failure: the value cannot currently be confirmed (§4.10).
type State int

// Record states.
const (
	False State = iota + 1
	True
	Unknown
)

// String names the state.
func (s State) String() string {
	switch s {
	case True:
		return "true"
	case False:
		return "false"
	case Unknown:
		return "unknown"
	default:
		return "state(" + strconv.Itoa(int(s)) + ")"
	}
}

// Op is the binary operation a derived record performs on the effective
// truth values of its parents (§4.7). "Not" is an attribute of the
// parent→child edge, not an operation.
type Op int

// Derived-record operations.
const (
	OpAnd Op = iota + 1
	OpOr
	OpNand
	OpNor
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpNand:
		return "nand"
	case OpNor:
		return "nor"
	default:
		return "op(" + strconv.Itoa(int(o)) + ")"
	}
}

// Ref is a credential record reference: the 64-bit (index, magic)
// identifier embedded in certificates (the CRR field of figure 4.2).
type Ref struct {
	Index uint32
	Magic uint32
}

// Uint64 packs the reference into the 8-byte wire form.
func (r Ref) Uint64() uint64 { return uint64(r.Index)<<32 | uint64(r.Magic) }

// RefFromUint64 unpacks a wire-form reference.
func RefFromUint64(u uint64) Ref {
	return Ref{Index: uint32(u >> 32), Magic: uint32(u)}
}

// String renders the reference.
func (r Ref) String() string { return fmt.Sprintf("crr:%d.%d", r.Index, r.Magic) }

// Parent designates a parent record, optionally via a negating edge.
type Parent struct {
	Ref     Ref
	Negated bool
}

// Not marks a negating edge to the given record.
func Not(r Ref) Parent { return Parent{Ref: r, Negated: true} }

// Of marks a plain edge to the given record.
func Of(r Ref) Parent { return Parent{Ref: r} }

// ErrDangling is returned when a reference's magic does not match the
// table slot: the record has been deleted (its fact is permanently
// false) or never existed.
var ErrDangling = errors.New("credrec: dangling credential record reference")

type childLink struct {
	ref     Ref
	negated bool
}

type record struct {
	ref       Ref
	op        Op
	state     State
	permanent bool
	notify    bool // another service is using this credential
	directUse bool // a certificate embeds this credential
	autoRev   bool // revoke if a parent exits its role
	external  string

	children []childLink

	// Effective (post edge-negation) parent counters.
	nParents  int
	effTrue   int
	effFalse  int
	effUnk    int
	permTrue  int // effective-true parents that are permanent
	permFalse int
}

type slot struct {
	magic uint32
	rec   *record // nil when free
}

// ChangeFunc observes state changes of records whose Notify flag is set;
// the oasis layer uses it to drive cross-service event notification
// (§4.9.2). permanent reports that the value will never change again.
type ChangeFunc func(ref Ref, s State, permanent bool)

type pendingChange struct {
	ref  Ref
	s    State
	perm bool
}

// Store is a server's credential record table.
type Store struct {
	mu       sync.Mutex
	slots    []slot
	free     []uint32
	onChange ChangeFunc
	pending  []pendingChange // notifications queued during propagation

	// stats
	created uint64
	deleted uint64
}

// NewStore creates an empty credential record store.
func NewStore() *Store { return &Store{} }

// OnChange installs the change observer for Notify-flagged records.
func (st *Store) OnChange(f ChangeFunc) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.onChange = f
}

func (st *Store) allocLocked(r *record) Ref {
	var idx uint32
	if n := len(st.free); n > 0 {
		idx = st.free[n-1]
		st.free = st.free[:n-1]
		st.slots[idx].magic++ // never reuse a reference
		st.slots[idx].rec = r
	} else {
		idx = uint32(len(st.slots))
		st.slots = append(st.slots, slot{magic: 1, rec: r})
	}
	r.ref = Ref{Index: idx, Magic: st.slots[idx].magic}
	st.created++
	return r.ref
}

func (st *Store) getLocked(ref Ref) (*record, error) {
	if int(ref.Index) >= len(st.slots) {
		return nil, ErrDangling
	}
	s := st.slots[ref.Index]
	if s.rec == nil || s.magic != ref.Magic {
		return nil, ErrDangling
	}
	return s.rec, nil
}

// NewFact creates a leaf record asserting a simple fact with the given
// initial state.
func (st *Store) NewFact(s State) Ref {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.allocLocked(&record{state: s})
}

// NewExternal creates a surrogate record for a fact held by another
// service (§4.9.1). Its state is maintained by event notification via
// SetState; source records where the remote fact lives.
func (st *Store) NewExternal(source string, s State) Ref {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.allocLocked(&record{state: s, external: source})
}

// NewDerived creates a record computing op over the effective values of
// the given parents, links it beneath them, and returns its reference.
// Any dangling parent makes the new record permanently false (the fact it
// depended on has been revoked).
func (st *Store) NewDerived(op Op, parents ...Parent) Ref {
	st.mu.Lock()
	defer st.mu.Unlock()
	r := &record{op: op, nParents: len(parents)}
	ref := st.allocLocked(r)
	broken := false
	for _, p := range parents {
		pr, err := st.getLocked(p.Ref)
		if err != nil {
			broken = true
			continue
		}
		pr.children = append(pr.children, childLink{ref: ref, negated: p.Negated})
		eff := effective(pr.state, p.Negated)
		r.count(eff, +1, pr.permanent)
	}
	if broken {
		r.state = False
		r.permanent = true
	} else {
		r.state = r.compute()
		r.permanent = r.decided()
	}
	return ref
}

// effective applies edge negation to a parent state.
func effective(s State, negated bool) State {
	if !negated {
		return s
	}
	switch s {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

func (r *record) count(eff State, d int, permanent bool) {
	switch eff {
	case True:
		r.effTrue += d
		if permanent {
			r.permTrue += d
		}
	case False:
		r.effFalse += d
		if permanent {
			r.permFalse += d
		}
	case Unknown:
		r.effUnk += d
	}
}

// compute derives the record's state from its counters (§4.8: counters
// of the number of parents that are true, false or unknown are all that
// is required).
func (r *record) compute() State {
	var s State
	switch r.op {
	case OpAnd, OpNand:
		switch {
		case r.effFalse > 0:
			s = False
		case r.effUnk > 0:
			s = Unknown
		default:
			s = True
		}
	case OpOr, OpNor:
		switch {
		case r.effTrue > 0:
			s = True
		case r.effUnk > 0:
			s = Unknown
		default:
			s = False
		}
	default: // leaf records have no op; state is set directly
		return r.state
	}
	if r.op == OpNand || r.op == OpNor {
		s = effective(s, true)
	}
	return s
}

// decided reports whether the record's value can never change again:
// either a dominant parent is permanent, or all parents are permanent.
func (r *record) decided() bool {
	switch r.op {
	case OpAnd, OpNand:
		if r.permFalse > 0 {
			return true
		}
	case OpOr, OpNor:
		if r.permTrue > 0 {
			return true
		}
	default:
		return r.permanent
	}
	return r.permTrue+r.permFalse == r.nParents
}

// SetState sets the state of a leaf or external record and propagates the
// change through the graph. It fails on derived records (their state is
// a function of their parents) and on permanent records.
func (st *Store) SetState(ref Ref, s State) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, err := st.getLocked(ref)
	if err != nil {
		return err
	}
	if r.nParents > 0 {
		return fmt.Errorf("credrec: %v is derived; its state follows its parents", ref)
	}
	if r.permanent {
		return fmt.Errorf("credrec: %v is permanent", ref)
	}
	st.transitionLocked(r, s, false)
	st.mu.Unlock()
	st.drain()
	st.mu.Lock()
	return nil
}

// Invalidate makes a record permanently false: the credential is revoked
// and can never return (§4.6: "credential records representing facts
// that are false, and will always remain false, can be deleted"). The
// change cascades. Invalidate on a derived record is permitted — it is
// how an explicit revocation deletes a delegation record.
func (st *Store) Invalidate(ref Ref) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, err := st.getLocked(ref)
	if err != nil {
		return err
	}
	st.transitionLocked(r, False, true)
	st.mu.Unlock()
	st.drain()
	st.mu.Lock()
	return nil
}

// MakePermanent freezes a record at its current state.
func (st *Store) MakePermanent(ref Ref) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, err := st.getLocked(ref)
	if err != nil {
		return err
	}
	st.transitionLocked(r, r.state, true)
	st.mu.Unlock()
	st.drain()
	st.mu.Lock()
	return nil
}

// transitionLocked applies a state/permanence change to r and recursively
// updates children via their counters. Notifications for Notify-flagged
// records are queued; public entry points drain them after unlocking.
func (st *Store) transitionLocked(r *record, s State, makePermanent bool) {
	if r.permanent {
		return
	}
	old := r.state
	if old == s && !makePermanent {
		return
	}
	r.state = s
	if makePermanent {
		r.permanent = true
	}
	if r.notify && st.onChange != nil {
		st.pending = append(st.pending, pendingChange{ref: r.ref, s: r.state, perm: r.permanent})
	}
	for _, cl := range r.children {
		cr, err := st.getLocked(cl.ref)
		if err != nil {
			continue
		}
		if cr.permanent {
			continue
		}
		oldEff := effective(old, cl.negated)
		newEff := effective(s, cl.negated)
		// The old contribution was counted while this parent was still
		// non-permanent; the new one carries the new permanence.
		cr.count(oldEff, -1, false)
		cr.count(newEff, +1, r.permanent)
		ns := cr.compute()
		nperm := cr.decided()
		if ns != cr.state || nperm {
			st.transitionLocked(cr, ns, nperm)
		}
	}
}

// drain fires queued change notifications; callers must not hold the lock.
func (st *Store) drain() {
	for {
		st.mu.Lock()
		if len(st.pending) == 0 {
			st.mu.Unlock()
			return
		}
		batch := st.pending
		st.pending = nil
		f := st.onChange
		st.mu.Unlock()
		if f == nil {
			return
		}
		for _, p := range batch {
			f(p.ref, p.s, p.perm)
		}
	}
}

// Lookup returns the record's current state. A dangling reference
// returns ErrDangling, which callers treat as permanently false.
func (st *Store) Lookup(ref Ref) (State, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, err := st.getLocked(ref)
	if err != nil {
		return False, err
	}
	return r.state, nil
}

// Valid reports whether the record exists and is currently true. This is
// the single check a server performs on each access (§4.6: "only a
// single credential record need be consulted to confirm an arbitrary
// number of facts").
func (st *Store) Valid(ref Ref) bool {
	s, err := st.Lookup(ref)
	return err == nil && s == True
}

// Flag setters. MarkDirectUse records that a certificate embeds the
// credential; MarkNotify that another service uses it; MarkAutoRevoke
// that it should be revoked if a parent exits its role (figure 4.7).
func (st *Store) MarkDirectUse(ref Ref) error {
	return st.setFlag(ref, func(r *record) { r.directUse = true })
}

// MarkNotify flags the record for cross-service change notification.
func (st *Store) MarkNotify(ref Ref) error {
	return st.setFlag(ref, func(r *record) { r.notify = true })
}

// MarkAutoRevoke flags the record for revocation on parent role exit.
func (st *Store) MarkAutoRevoke(ref Ref) error {
	return st.setFlag(ref, func(r *record) { r.autoRev = true })
}

func (st *Store) setFlag(ref Ref, f func(*record)) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, err := st.getLocked(ref)
	if err != nil {
		return err
	}
	f(r)
	return nil
}

// AutoRevoke reports the auto-revoke flag.
func (st *Store) AutoRevoke(ref Ref) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, err := st.getLocked(ref)
	return err == nil && r.autoRev
}

// External returns the source service of an external record ("" for
// local records).
func (st *Store) External(ref Ref) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, err := st.getLocked(ref)
	if err != nil {
		return ""
	}
	return r.external
}

// MarkSourceUnknown marks every external record from the given source as
// Unknown; used when a heartbeat from that source is missed (§4.10).
// The unknown state propagates to children and possibly other servers.
func (st *Store) MarkSourceUnknown(source string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, sl := range st.slots {
		r := sl.rec
		if r == nil || r.external != source || r.permanent || r.state == Unknown {
			continue
		}
		st.transitionLocked(r, Unknown, false)
		n++
	}
	st.mu.Unlock()
	st.drain()
	st.mu.Lock()
	return n
}

// ExternalRefs lists the live external records for a source, so a server
// can re-read their states when a connection is re-established.
func (st *Store) ExternalRefs(source string) []Ref {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []Ref
	for _, sl := range st.slots {
		if r := sl.rec; r != nil && r.external == source {
			out = append(out, r.ref)
		}
	}
	return out
}

// Sweep garbage-collects (§4.8): it unlinks parent→child edges from
// permanent records and deletes records that are permanent-and-false, or
// uninteresting (no direct use, no notify flag, no children). It returns
// the number of records deleted.
func (st *Store) Sweep() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	deleted := 0
	for i := range st.slots {
		r := st.slots[i].rec
		if r == nil {
			continue
		}
		if r.permanent {
			// Children's counters already carry this record's final
			// contribution; the links are redundant.
			r.children = nil
		}
		uninteresting := !r.directUse && !r.notify && len(r.children) == 0
		if (r.permanent && r.state == False) || (uninteresting && r.permanent) || (uninteresting && r.nParents == 0 && r.external == "" && r.state == False) {
			st.slots[i].rec = nil
			st.free = append(st.free, uint32(i))
			deleted++
			st.deleted++
		}
	}
	return deleted
}

// Live reports the number of live records (for tests and benchmarks).
func (st *Store) Live() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, sl := range st.slots {
		if sl.rec != nil {
			n++
		}
	}
	return n
}

// Stats reports cumulative creations and deletions.
func (st *Store) Stats() (created, deleted uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.created, st.deleted
}
