package credrec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"oasis/internal/bus"
)

// Binary journal records (the persistence engine's write format — see
// docs/STORAGE.md "Journal segments"). Each mutation of a LoggedStore
// becomes one framed record:
//
//	uvarint  payload length (1 .. maxRecordBytes)
//	uint32le CRC-32C of the payload
//	payload  opcode byte + operands (bus codec varints / strings)
//
// The frame is what makes crash recovery honest: a torn final write
// leaves either a short frame or a checksum mismatch at end-of-file,
// both of which Replay drops silently (the operation never committed);
// the same damage anywhere *before* the tail means the medium lost
// committed data and recovery fails loudly. The payload reuses the
// bus wire codec helpers (varints, length-prefixed strings), so the
// journal inherits the same decoder hardening: every length is bounded
// before allocation.

// Journal opcodes. These are an on-disk format: existing values must
// never be renumbered (golden vectors in testdata/ pin them).
const (
	opFact           = 1  // state
	opExternal       = 2  // source, state
	opDerived        = 3  // op, count, (ref, negated)...
	opSet            = 4  // ref, state
	opInvalidate     = 5  // ref
	opPermanent      = 6  // ref
	opDirectUse      = 7  // ref
	opNotify         = 8  // ref
	opAutoRevoke     = 9  // ref
	opSweep          = 10 // (none)
	opSourceUnknown  = 11 // source
	opSourceFailsafe = 12 // source
)

// maxRecordBytes bounds a single journal record; the largest legitimate
// record is a derived allocation with maxWireCount parents, far below
// this.
const maxRecordBytes = 1 << 20

// crcJournal is the Castagnoli table used for every journal and
// snapshot checksum.
var crcJournal = crc32.MakeTable(crc32.Castagnoli)

// ErrJournalCorrupt reports damage in the body of a journal (not a torn
// tail): committed operations are unrecoverable from this medium.
var ErrJournalCorrupt = errors.New("credrec: journal corrupt")

// appendRecord frames one encoded payload onto buf.
func appendRecord(buf, payload []byte) []byte {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.Checksum(payload, crcJournal))
	buf = append(buf, hdr[:n+4]...)
	return append(buf, payload...)
}

// journalReader decodes framed records off a stream.
type journalReader struct {
	br  *bufio.Reader
	pay bytes.Reader
	dec *bus.WireDec
	buf []byte
	off int64 // stream offset just past the last good record
}

func newJournalReader(r io.Reader) *journalReader {
	jr := &journalReader{br: bufio.NewReader(r)}
	jr.dec = bus.NewWireDec(&jr.pay)
	return jr
}

// errTorn is the internal marker for an incomplete record at
// end-of-stream: the tail of a crashed append.
var errTorn = errors.New("torn tail")

// next returns the payload of the next record. io.EOF means a clean
// end; errTorn means the stream ends inside a record (or the final
// record fails its checksum with nothing after it); any other error is
// body corruption.
func (jr *journalReader) next() ([]byte, error) {
	length, err := binary.ReadUvarint(jr.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, errTorn
		}
		return nil, fmt.Errorf("%w: bad record length: %v", ErrJournalCorrupt, err)
	}
	if length == 0 || length > maxRecordBytes {
		return nil, fmt.Errorf("%w: record length %d out of range", ErrJournalCorrupt, length)
	}
	if cap(jr.buf) < int(length)+4 {
		jr.buf = make([]byte, length+4)
	}
	frame := jr.buf[:length+4]
	if _, err := io.ReadFull(jr.br, frame); err != nil {
		// Only end-of-stream inside the frame is a torn tail; a device
		// read error must fail loudly, not silently drop committed
		// records as if they were never written.
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errTorn // short frame: the write never finished
		}
		return nil, fmt.Errorf("credrec: journal read: %w", err)
	}
	want := binary.LittleEndian.Uint32(frame[:4])
	payload := frame[4:]
	if crc32.Checksum(payload, crcJournal) != want {
		// A full-length frame with a bad sum is a torn tail only if it
		// is the very last thing on the stream (a partially persisted
		// final write); any committed record after it proves the body
		// itself is damaged.
		if _, err := jr.br.ReadByte(); err == io.EOF {
			return nil, errTorn
		}
		return nil, fmt.Errorf("%w: record checksum mismatch", ErrJournalCorrupt)
	}
	jr.off += int64(uvarintLen(length)) + 4 + int64(length)
	return payload, nil
}

// uvarintLen is the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// apply decodes one record payload and applies it to st.
func (jr *journalReader) apply(st *Store, payload []byte) error {
	jr.pay.Reset(payload)
	d := jr.dec
	op, err := d.Byte()
	if err != nil {
		return err
	}
	state := func() (State, error) {
		u, err := d.Uvarint()
		if err != nil {
			return 0, err
		}
		if s := State(u); s == True || s == False || s == Unknown {
			return s, nil
		}
		return 0, fmt.Errorf("bad state %d", u)
	}
	ref := func() (Ref, error) {
		u, err := d.Uvarint()
		return RefFromUint64(u), err
	}
	switch op {
	case opFact:
		s, err := state()
		if err != nil {
			return err
		}
		st.NewFact(s)
	case opExternal:
		source, err := d.String()
		if err != nil {
			return err
		}
		s, err := state()
		if err != nil {
			return err
		}
		st.NewExternal(source, s)
	case opDerived:
		u, err := d.Uvarint()
		if err != nil {
			return err
		}
		if o := Op(u); o != OpAnd && o != OpOr && o != OpNand && o != OpNor {
			return fmt.Errorf("bad derived op %d", u)
		}
		n, err := d.Uvarint()
		if err != nil {
			return err
		}
		if n > maxRecordBytes/2 {
			return fmt.Errorf("parent count %d out of range", n)
		}
		parents := make([]Parent, n)
		for i := range parents {
			if parents[i].Ref, err = ref(); err != nil {
				return err
			}
			if parents[i].Negated, err = d.Bool(); err != nil {
				return err
			}
		}
		st.NewDerived(Op(u), parents...)
	case opSet:
		r, err := ref()
		if err != nil {
			return err
		}
		s, err := state()
		if err != nil {
			return err
		}
		if err := st.SetState(r, s); err != nil {
			return err
		}
	case opInvalidate:
		r, err := ref()
		if err != nil {
			return err
		}
		if err := st.Invalidate(r); err != nil {
			return err
		}
	case opPermanent:
		r, err := ref()
		if err != nil {
			return err
		}
		if err := st.MakePermanent(r); err != nil {
			return err
		}
	case opDirectUse, opNotify, opAutoRevoke:
		r, err := ref()
		if err != nil {
			return err
		}
		switch op {
		case opDirectUse:
			err = st.MarkDirectUse(r)
		case opNotify:
			err = st.MarkNotify(r)
		default:
			err = st.MarkAutoRevoke(r)
		}
		if err != nil {
			return err
		}
	case opSweep:
		st.Sweep()
	case opSourceUnknown:
		source, err := d.String()
		if err != nil {
			return err
		}
		st.MarkSourceUnknown(source)
	case opSourceFailsafe:
		source, err := d.String()
		if err != nil {
			return err
		}
		st.MarkSourceFailsafe(source)
	default:
		return fmt.Errorf("unknown opcode %d", op)
	}
	if jr.pay.Len() != 0 {
		return fmt.Errorf("%d trailing bytes after operands", jr.pay.Len())
	}
	return nil
}

// ReplayInto re-executes a binary journal stream against st, which must
// be in exactly the state the stream was journaled from (empty for a
// whole journal; the snapshot's store for a tail segment). It returns
// the number of records applied and whether a torn final record was
// dropped. With strict set, a torn tail is an error too — recovery
// passes strict for every segment except the last, because only the
// segment being appended to at the crash can legitimately be torn.
func ReplayInto(st *Store, r io.Reader, strict bool) (applied int, torn bool, err error) {
	applied, _, torn, err = ReplayIntoOffset(st, r, strict)
	return applied, torn, err
}

// ReplayIntoOffset is ReplayInto, additionally reporting the stream
// offset just past the last applied record — the length a torn segment
// can be truncated to so its tear is not mistaken for mid-journal
// corruption by a later recovery.
func ReplayIntoOffset(st *Store, r io.Reader, strict bool) (applied int, clean int64, torn bool, err error) {
	jr := newJournalReader(r)
	for {
		payload, err := jr.next()
		if err == io.EOF {
			return applied, clean, false, nil
		}
		if err == errTorn {
			if strict {
				return applied, clean, true, fmt.Errorf("%w: record %d torn mid-journal", ErrJournalCorrupt, applied+1)
			}
			return applied, clean, true, nil
		}
		if err != nil {
			return applied, clean, false, err
		}
		if err := jr.apply(st, payload); err != nil {
			return applied, clean, false, fmt.Errorf("%w: record %d: %v", ErrJournalCorrupt, applied+1, err)
		}
		applied++
		clean = jr.off
	}
}

// Replay rebuilds a store by re-executing a binary journal. A torn
// final record — the footprint of a crash mid-append — is dropped
// silently; corruption anywhere else fails.
func Replay(r io.Reader) (*Store, error) {
	st := NewStore()
	if _, _, err := ReplayInto(st, r, false); err != nil {
		return nil, err
	}
	return st, nil
}
