package storage

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"oasis/internal/credrec"
)

// populate runs a representative workload and returns the refs a
// client would still hold (certificates in the wild).
func populate(ls *credrec.LoggedStore) (kept, revoked []credrec.Ref) {
	for i := 0; i < 8; i++ {
		root := ls.NewFact(credrec.True)
		member := ls.NewDerived(credrec.OpAnd, credrec.Of(root))
		_ = ls.MarkDirectUse(member)
		if i%2 == 0 {
			_ = ls.Invalidate(root)
			revoked = append(revoked, member)
		} else {
			kept = append(kept, member)
		}
	}
	return kept, revoked
}

func checkRecovered(t *testing.T, ls *credrec.LoggedStore, kept, revoked []credrec.Ref) {
	t.Helper()
	for _, r := range kept {
		if !ls.Valid(r) {
			t.Fatalf("kept ref %v invalid after recovery", r)
		}
	}
	for _, r := range revoked {
		if ls.Valid(r) {
			t.Fatalf("revoked ref %v valid after recovery", r)
		}
	}
}

func TestEngineRecoverFromJournalOnly(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	kept, revoked := populate(e.Store())
	img := e.Store().Image()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(be, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if snap, segs, recs, torn := e2.Recovered(); snap != 0 || segs == 0 || recs == 0 || torn {
		t.Fatalf("Recovered() = %d %d %d %v, want journal-only recovery", snap, segs, recs, torn)
	}
	if !bytes.Equal(e2.Store().Image(), img) {
		t.Fatal("journal-only recovery image differs")
	}
	checkRecovered(t, e2.Store(), kept, revoked)
}

func TestEngineSnapshotCompactsAndRecovers(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways, SweepBeforeSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	kept, revoked := populate(e.Store())
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Compaction deleted the old segment and rolled to a new one.
	segs, _ := be.ListSegments()
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("segments after snapshot = %v, want [2]", segs)
	}
	// Post-snapshot tail.
	tailRef := e.Store().NewFact(credrec.True)
	if err := e.Store().MarkDirectUse(tailRef); err != nil {
		t.Fatal(err)
	}
	img := e.Store().Image()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(be, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	snap, nsegs, recs, torn := e2.Recovered()
	if snap != 1 || torn {
		t.Fatalf("Recovered() = %d %d %d %v, want snapshot 1, no tear", snap, nsegs, recs, torn)
	}
	if recs != 2 {
		t.Fatalf("replayed %d tail records, want 2 (the post-snapshot ops)", recs)
	}
	if !bytes.Equal(e2.Store().Image(), img) {
		t.Fatal("snapshot+tail recovery image differs")
	}
	checkRecovered(t, e2.Store(), kept, revoked)
	if !e2.Store().Valid(tailRef) {
		t.Fatal("post-snapshot tail ref lost")
	}
}

func TestEngineAutoSnapshotTrigger(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways, SnapshotEveryOps: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 100; i++ {
		e.Store().NewFact(credrec.True)
	}
	// The trigger is asynchronous: poll until the compactor has rolled
	// past the first segment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		segs, _ := be.ListSegments()
		if len(segs) > 0 && segs[len(segs)-1] >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("automatic snapshot trigger never fired; segments = %v", segs)
		}
		time.Sleep(time.Millisecond)
	}
	// An explicit snapshot then leaves exactly one active segment.
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := be.ListSegments(); len(segs) != 1 {
		t.Fatalf("segments = %v, want exactly one after compaction", segs)
	}
}

func TestEngineMidSnapshotCrash(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	kept, revoked := populate(e.Store())
	img := e.Store().Image()

	// The snapshot install fails (crash before rename); the engine
	// reports it and keeps journaling (on the already-rolled segment —
	// the roll happens before the install precisely so a failure here
	// cannot orphan committed records).
	be.FailNextSnapshot()
	if err := e.Snapshot(); err == nil {
		t.Fatal("injected snapshot failure not reported")
	}
	after := e.Store().NewFact(credrec.True)
	if err := e.Store().MarkDirectUse(after); err != nil {
		t.Fatal(err)
	}

	// Power loss now: only synced journal bytes survive.
	crashed := be.Crash(0)
	e2, err := Open(crashed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if snap, _, _, _ := e2.Recovered(); snap != 0 {
		t.Fatalf("recovered from snapshot %d, want journal-only (install never completed)", snap)
	}
	checkRecovered(t, e2.Store(), kept, revoked)
	if !e2.Store().Valid(after) {
		t.Fatal("post-failed-snapshot mutation lost")
	}
	// And a later, successful snapshot still works on the survivor.
	if err := e2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	img2 := e2.Store().Image()
	_ = img
	e3, err := Open(crashed.Crash(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if !bytes.Equal(e3.Store().Image(), img2) {
		t.Fatal("recovery after recovered snapshot differs")
	}
}

func TestEngineTornFinalRecord(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	kept, revoked := populate(e.Store())
	// One more op whose journal record will be half-lost: SyncNone-style
	// tear modelled by keeping 3 unsynced bytes.
	ls := e.Store()
	ls.NewFact(credrec.True)

	// Simulate: everything synced so far, then a final record of which
	// only 3 bytes hit the platter.
	segs, _ := be.ListSegments()
	active := segs[len(segs)-1]
	total, synced := be.SegmentBytes(active)
	if synced != total {
		t.Fatalf("SyncAlways left %d/%d bytes unsynced", synced, total)
	}
	crashed := be.Crash(0)
	// Manually tear: re-crash with a fabricated partial append.
	cs := crashed.segs[active]
	cs.data = append(cs.data, 0x09, 0x00, 0x00) // half a frame
	cs.synced = len(cs.data)

	e2, err := Open(crashed, Options{})
	if err != nil {
		t.Fatalf("torn final record broke recovery: %v", err)
	}
	defer e2.Close()
	if _, _, _, torn := e2.Recovered(); !torn {
		t.Fatal("torn final record not reported")
	}
	checkRecovered(t, e2.Store(), kept, revoked)
}

// TestEngineTornRecoveryThenRestart is the double-recovery obligation:
// recovering from a torn tail must truncate the tear off the medium, so
// that journaling new records and restarting again — with no snapshot
// in between — still recovers. Without truncation the second Open sees
// the old tear followed by a data-bearing segment and refuses it as
// mid-journal corruption.
func TestEngineTornRecoveryThenRestart(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	kept, revoked := populate(e.Store())

	// Crash with half a frame appended to the active segment.
	segs, _ := be.ListSegments()
	active := segs[len(segs)-1]
	crashed := be.Crash(0)
	cs := crashed.segs[active]
	cs.data = append(cs.data, 0x09, 0x00, 0x00)
	cs.synced = len(cs.data)

	e2, err := Open(crashed, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, torn := e2.Recovered(); !torn {
		t.Fatal("torn final record not reported")
	}
	after := e2.Store().NewFact(credrec.True)
	if err := e2.Store().MarkDirectUse(after); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// Ordinary restart (no crash, no snapshot). Must not fail, and must
	// not report the already-truncated tear again.
	e3, err := Open(crashed, Options{})
	if err != nil {
		t.Fatalf("restart after torn recovery failed: %v", err)
	}
	defer e3.Close()
	if _, _, _, torn := e3.Recovered(); torn {
		t.Fatal("tear survived the first recovery")
	}
	checkRecovered(t, e3.Store(), kept, revoked)
	if !e3.Store().Valid(after) {
		t.Fatal("post-tear mutation lost")
	}
}

// TestDirTornRecoveryThenRestart exercises the same double recovery on
// the filesystem backend (os.Truncate path).
func TestDirTornRecoveryThenRestart(t *testing.T) {
	dir := t.TempDir()
	be, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	kept, revoked := populate(e.Store())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the newest segment: half a frame at the tail.
	segs, _ := be.ListSegments()
	f, err := os.OpenFile(be.segPath(segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x09, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	be2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(be2, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, torn := e2.Recovered(); !torn {
		t.Fatal("torn final record not reported")
	}
	after := e2.Store().NewFact(credrec.True)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	be3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Open(be3, Options{})
	if err != nil {
		t.Fatalf("restart after torn recovery failed: %v", err)
	}
	defer e3.Close()
	if _, _, _, torn := e3.Recovered(); torn {
		t.Fatal("tear survived the first recovery")
	}
	checkRecovered(t, e3.Store(), kept, revoked)
	if !e3.Store().Valid(after) {
		t.Fatal("post-tear mutation lost")
	}
}

// TestEngineSegmentRollFailureInstallsNoSnapshot pins the Snapshot
// ordering: if the roll to a fresh segment fails, no snapshot may be
// installed — one covering the still-active segment would make the
// next recovery delete committed (even acknowledged) records.
func TestEngineSegmentRollFailureInstallsNoSnapshot(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	kept, revoked := populate(e.Store())

	be.FailNextCreateSegment()
	if err := e.Snapshot(); err == nil {
		t.Fatal("injected segment-roll failure not reported")
	}
	if _, r, ok, _ := be.LoadSnapshot(); ok {
		r.Close()
		t.Fatal("snapshot installed despite failed segment roll")
	}

	// The journal keeps running; everything must survive a crash.
	after := e.Store().NewFact(credrec.True)
	if err := e.Store().MarkDirectUse(after); err != nil {
		t.Fatal(err)
	}
	img := e.Store().Image()

	e2, err := Open(be.Crash(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !bytes.Equal(e2.Store().Image(), img) {
		t.Fatal("committed records lost after failed segment roll")
	}
	checkRecovered(t, e2.Store(), kept, revoked)
	if !e2.Store().Valid(after) {
		t.Fatal("post-failure mutation lost")
	}
	// A later snapshot on the survivor succeeds and compacts.
	if err := e2.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineJournalWriteFailureFailsStop(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	keep := e.Store().NewFact(credrec.True)
	be.FailWrites(0)
	if err := e.Store().Invalidate(keep); err == nil {
		t.Fatal("write failure not surfaced to mutator")
	}
	if e.Store().Err() == nil {
		t.Fatal("store did not fail-stop")
	}
	// Every mutation after the failure is refused before it touches the
	// in-memory store.
	live := e.Store().Live()
	if ref := e.Store().NewFact(credrec.True); (ref != credrec.Ref{}) {
		t.Fatal("fail-stopped store still allocates")
	}
	if got := e.Store().Live(); got != live {
		t.Fatalf("fail-stopped store mutated: %d -> %d", live, got)
	}
}

func TestDirBackendRecovery(t *testing.T) {
	dir := t.TempDir()
	be, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	kept, revoked := populate(e.Store())
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	tail := e.Store().NewFact(credrec.True)
	if err := e.Store().MarkDirectUse(tail); err != nil {
		t.Fatal(err)
	}
	img := e.Store().Image()

	// Crash: reopen the directory without closing the engine (the
	// process died; SyncAlways means everything reached the files).
	be2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(be2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, recs, torn := e2.Recovered()
	if snap != 1 || recs != 2 || torn {
		t.Fatalf("Recovered() = %d _ %d %v, want snapshot 1, 2 tail records", snap, recs, torn)
	}
	if !bytes.Equal(e2.Store().Image(), img) {
		t.Fatal("dir recovery image differs")
	}
	checkRecovered(t, e2.Store(), kept, revoked)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean close + reopen also works.
	be3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Open(be3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if !bytes.Equal(e3.Store().Image(), img) {
		t.Fatal("second dir recovery image differs")
	}
}

func TestDirBackendDiscardsTmpLeftovers(t *testing.T) {
	dir := t.TempDir()
	be, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	e.Store().NewFact(credrec.True)
	img := e.Store().Image()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-snapshot leaves a tmp file; OpenDir must ignore and
	// remove it.
	tmp := be.snapPath(9) + ".tmp"
	if err := os.WriteFile(tmp, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	be2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(be2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !bytes.Equal(e2.Store().Image(), img) {
		t.Fatal("tmp leftover corrupted recovery")
	}
}

func TestEngineCorruptMidJournalFailsRecovery(t *testing.T) {
	be := NewMemory()
	e, err := Open(be, Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	populate(e.Store())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	crashed := be.Crash(0)
	seg := crashed.segs[1]
	seg.data[len(seg.data)/3] ^= 0xff // damage committed data
	if _, err := Open(crashed, Options{}); !errors.Is(err, credrec.ErrJournalCorrupt) {
		t.Fatalf("mid-journal corruption: Open returned %v, want ErrJournalCorrupt", err)
	}
}
