package storage

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"oasis/internal/credrec"
)

// Options configure an Engine.
type Options struct {
	// Sync is the group-commit durability policy (credrec.SyncBatched
	// by default).
	Sync credrec.SyncPolicy
	// SnapshotEveryOps triggers a snapshot + compaction after this many
	// journaled operations since the last snapshot. Zero disables the
	// op trigger.
	SnapshotEveryOps int
	// SnapshotEveryBytes triggers on journal bytes since the last
	// snapshot. Zero disables the byte trigger.
	SnapshotEveryBytes int64
	// SweepBeforeSnapshot runs a store Sweep before each snapshot, so
	// fully-revoked subgraphs are garbage-collected and never carried
	// into the image.
	SweepBeforeSnapshot bool
	// OnSnapshotError, if set, observes failures of automatic
	// snapshots (the engine keeps journaling; the next trigger
	// retries).
	OnSnapshotError func(error)
}

// Engine ties a Backend to a recovering, journaling credential store.
// Open performs recovery; Store returns the live LoggedStore; the
// engine snapshots and compacts in the background per Options.
type Engine struct {
	be   Backend
	opts Options

	ls *credrec.LoggedStore

	mu     sync.Mutex // serialises snapshot/roll/close
	seg    Segment    // active segment (mutated only under mu)
	segNum uint64
	closed bool

	// snapshot trigger accounting (written by the committer's OnCommit
	// callback, read by the trigger loop)
	opsSince   atomic.Int64
	bytesSince atomic.Int64

	snapCh chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	// recovery facts, for operators and tests
	recoveredSnapshot uint64
	recoveredSegments int
	recoveredRecords  int
	recoveredTorn     bool
}

// Open recovers the store held by be — newest snapshot, then replay of
// every segment above it — and starts journaling new mutations to a
// fresh segment. A torn final record in the last segment (the
// footprint of a crash mid-append) is dropped; torn or corrupt data
// anywhere else fails recovery.
func Open(be Backend, opts Options) (*Engine, error) {
	e := &Engine{
		be:     be,
		opts:   opts,
		snapCh: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}

	snapNum, snapReader, haveSnap, err := be.LoadSnapshot()
	if err != nil {
		return nil, fmt.Errorf("storage: loading snapshot: %w", err)
	}
	var st *credrec.Store
	if haveSnap {
		st, err = credrec.ReadSnapshot(snapReader)
		snapReader.Close()
		if err != nil {
			return nil, fmt.Errorf("storage: snapshot %d: %w", snapNum, err)
		}
		e.recoveredSnapshot = snapNum
	} else {
		st = credrec.NewStore()
	}

	segs, err := be.ListSegments()
	if err != nil {
		return nil, fmt.Errorf("storage: listing segments: %w", err)
	}
	// Segments the snapshot covers are garbage a crash prevented the
	// compactor from deleting; skip them (and finish the delete).
	var tail []uint64
	for _, n := range segs {
		if !haveSnap || n > snapNum {
			tail = append(tail, n)
		} else {
			_ = be.RemoveSegment(n)
		}
	}
	// Only the newest data-bearing segment may be torn: everything
	// below it was fully written before the next segment was opened.
	// An empty trailing segment (created by a snapshot whose install
	// crashed) is fine either way.
	tornAt := -1
	for i, n := range tail {
		r, err := be.OpenSegment(n)
		if err != nil {
			return nil, fmt.Errorf("storage: opening segment %d: %w", n, err)
		}
		applied, clean, torn, rerr := credrec.ReplayIntoOffset(st, r, false)
		r.Close()
		if rerr != nil {
			return nil, fmt.Errorf("storage: segment %d: %w", n, rerr)
		}
		if torn {
			if tornAt >= 0 {
				return nil, fmt.Errorf("storage: segment %d torn mid-journal: %w", tail[tornAt], credrec.ErrJournalCorrupt)
			}
			tornAt = i
			e.recoveredTorn = true
			// Cut the tear off the medium. Without this, the next
			// recovery would see the (still torn) segment followed by a
			// data-bearing successor and refuse it as mid-journal
			// corruption — one crash plus one ordinary restart would
			// brick the store.
			if terr := be.TruncateSegment(n, clean); terr != nil {
				return nil, fmt.Errorf("storage: truncating torn segment %d: %w", n, terr)
			}
		} else if applied > 0 && tornAt >= 0 {
			return nil, fmt.Errorf("storage: segment %d torn mid-journal: %w", tail[tornAt], credrec.ErrJournalCorrupt)
		}
		e.recoveredRecords += applied
	}
	e.recoveredSegments = len(tail)

	e.segNum = snapNum
	if len(segs) > 0 && segs[len(segs)-1] > e.segNum {
		e.segNum = segs[len(segs)-1]
	}
	e.segNum++
	seg, err := be.CreateSegment(e.segNum)
	if err != nil {
		return nil, fmt.Errorf("storage: creating segment %d: %w", e.segNum, err)
	}
	e.seg = seg

	e.ls = credrec.NewLoggedStoreWith(st, seg, credrec.JournalOptions{
		Sync: opts.Sync,
		OnCommit: func(records, bytes int) {
			e.opsSince.Add(int64(records))
			e.bytesSince.Add(int64(bytes))
			if e.due() {
				select {
				case e.snapCh <- struct{}{}:
				default:
				}
			}
		},
	})

	e.wg.Add(1)
	go e.snapshotLoop()
	return e, nil
}

// Store returns the live, journaling store.
func (e *Engine) Store() *credrec.LoggedStore { return e.ls }

// Recovered reports what Open rebuilt: the snapshot number used (0 if
// none), tail segments replayed, records applied from them, and
// whether a torn final record was dropped.
func (e *Engine) Recovered() (snapshot uint64, segments, records int, torn bool) {
	return e.recoveredSnapshot, e.recoveredSegments, e.recoveredRecords, e.recoveredTorn
}

// due reports whether a snapshot trigger has tripped.
func (e *Engine) due() bool {
	if e.opts.SnapshotEveryOps > 0 && e.opsSince.Load() >= int64(e.opts.SnapshotEveryOps) {
		return true
	}
	if e.opts.SnapshotEveryBytes > 0 && e.bytesSince.Load() >= e.opts.SnapshotEveryBytes {
		return true
	}
	return false
}

// snapshotLoop services automatic snapshot triggers.
func (e *Engine) snapshotLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case <-e.snapCh:
			if !e.due() {
				continue
			}
			if err := e.Snapshot(); err != nil && err != ErrEngineClosed {
				if e.opts.OnSnapshotError != nil {
					e.opts.OnSnapshotError(err)
				}
			}
		}
	}
}

// Snapshot compacts now: quiesce the store, make the active segment
// durable, roll the journal to a fresh segment, write a snapshot
// covering everything before the roll, and delete the segments and
// snapshots the new image obsoletes. On failure nothing is deleted and
// the journal keeps running — on its old segment if the roll failed,
// on the new one if only the snapshot install did; either way recovery
// still replays every committed record.
func (e *Engine) Snapshot() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	if e.opts.SweepBeforeSnapshot {
		e.ls.Sweep()
	}
	var err error
	e.ls.Snapshot(func() {
		cur := e.segNum
		// The snapshot will claim to cover segment cur completely; make
		// the claim true before anything is installed.
		if serr := e.seg.Sync(); serr != nil {
			err = fmt.Errorf("storage: syncing segment %d: %w", cur, serr)
			return
		}
		// Roll to the next segment BEFORE installing the snapshot. The
		// quiesced state corresponds to the end of cur either way, but
		// in the other order a failed roll would leave the journal
		// appending to a segment an installed snapshot claims to cover
		// — and the next recovery would delete those committed records.
		next := cur + 1
		seg, cerr := e.be.CreateSegment(next)
		if cerr != nil {
			err = fmt.Errorf("storage: creating segment %d: %w", next, cerr)
			return
		}
		_ = e.seg.Close()
		e.ls.SetSink(seg)
		e.seg = seg
		e.segNum = next
		if werr := e.be.WriteSnapshot(cur, func(w io.Writer) error {
			return e.ls.WriteSnapshot(w)
		}); werr != nil {
			// Harmless: no snapshot, so recovery replays segments
			// <= cur plus the new tail. The since-counters keep
			// accumulating, so the next trigger retries promptly.
			err = fmt.Errorf("storage: writing snapshot %d: %w", cur, werr)
			return
		}
		e.opsSince.Store(0)
		e.bytesSince.Store(0)
		// GC: the snapshot supersedes everything at or below cur.
		if segs, lerr := e.be.ListSegments(); lerr == nil {
			for _, n := range segs {
				if n <= cur {
					_ = e.be.RemoveSegment(n)
				}
			}
		}
		_ = e.be.RemoveSnapshotsBelow(cur)
	})
	return err
}

// Close drains the journal, stops the background compactor, syncs the
// active segment and releases the backend.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()

	close(e.done)
	e.wg.Wait()

	err := e.ls.Close()
	if serr := e.seg.Sync(); err == nil && serr != nil {
		err = serr
	}
	if cerr := e.seg.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if berr := e.be.Close(); err == nil && berr != nil {
		err = berr
	}
	return err
}
