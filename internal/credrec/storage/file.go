package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Dir is a file-system Backend: one directory holding journal segments
// (journal-NNNNNNNN.seg) and snapshots (snapshot-NNNNNNNN.snap).
// Snapshots are installed atomically — written to a .tmp file, fsynced,
// then renamed into place — so a crash mid-snapshot leaves the previous
// snapshot authoritative and the journal intact. Segment writes go
// straight to the file descriptor (the LoggedStore committer already
// batches), and Segment.Sync is fsync.
type Dir struct {
	dir string
}

const (
	segPrefix  = "journal-"
	segSuffix  = ".seg"
	snapPrefix = "snapshot-"
	snapSuffix = ".snap"
)

// OpenDir opens (creating if needed) a store directory, discarding any
// half-written snapshot tmp files from an earlier crash.
func OpenDir(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, f := range leftovers {
		_ = os.Remove(f)
	}
	return &Dir{dir: dir}, nil
}

// Path returns the backing directory.
func (d *Dir) Path() string { return d.dir }

func (d *Dir) segPath(n uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix))
}

func (d *Dir) snapPath(n uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s%08d%s", snapPrefix, n, snapSuffix))
}

// scan lists the numbers of files matching prefix/suffix, ascending.
func (d *Dir) scan(prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		n, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ListSegments returns segment numbers in ascending order.
func (d *Dir) ListSegments() ([]uint64, error) { return d.scan(segPrefix, segSuffix) }

// OpenSegment opens segment n for reading.
func (d *Dir) OpenSegment(n uint64) (io.ReadCloser, error) {
	return os.Open(d.segPath(n))
}

// CreateSegment creates segment n for appending.
func (d *Dir) CreateSegment(n uint64) (Segment, error) {
	f, err := os.OpenFile(d.segPath(n), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	d.syncDir()
	return f, nil
}

// TruncateSegment durably truncates segment n to size bytes (recovery
// cutting a torn tail). Idempotent under crashes: if the fsync never
// lands, the next recovery finds the same tear and truncates again.
func (d *Dir) TruncateSegment(n uint64, size int64) error {
	f, err := os.OpenFile(d.segPath(n), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if terr := f.Truncate(size); terr != nil {
		f.Close()
		return terr
	}
	if serr := f.Sync(); serr != nil {
		f.Close()
		return serr
	}
	return f.Close()
}

// RemoveSegment deletes segment n.
func (d *Dir) RemoveSegment(n uint64) error {
	if err := os.Remove(d.segPath(n)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// WriteSnapshot installs a snapshot atomically via tmp + rename.
func (d *Dir) WriteSnapshot(n uint64, write func(io.Writer) error) error {
	final := d.snapPath(n)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	d.syncDir()
	return nil
}

// LoadSnapshot opens the newest snapshot.
func (d *Dir) LoadSnapshot() (uint64, io.ReadCloser, bool, error) {
	snaps, err := d.scan(snapPrefix, snapSuffix)
	if err != nil || len(snaps) == 0 {
		return 0, nil, false, err
	}
	n := snaps[len(snaps)-1]
	f, err := os.Open(d.snapPath(n))
	if err != nil {
		return 0, nil, false, err
	}
	return n, f, true, nil
}

// RemoveSnapshotsBelow deletes snapshots numbered strictly below n.
func (d *Dir) RemoveSnapshotsBelow(n uint64) error {
	snaps, err := d.scan(snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	for _, k := range snaps {
		if k < n {
			if err := os.Remove(d.snapPath(k)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// Close releases the backend.
func (d *Dir) Close() error { return nil }

// syncDir fsyncs the directory so renames and creations are durable;
// best effort (some filesystems refuse directory fsync).
func (d *Dir) syncDir() {
	if f, err := os.Open(d.dir); err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
}
