// Package storage is the persistence engine for credential-record
// stores (docs/STORAGE.md): a pluggable Backend holding numbered
// journal segments and store snapshots, and an Engine that opens a
// backend, recovers the store (newest snapshot + tail-segment replay),
// journals new mutations through credrec.LoggedStore's group commit,
// and periodically compacts — snapshot, roll to a fresh segment,
// delete everything the snapshot covers. Recovery cost is O(live
// records + tail), not O(history), and steady-state disk is bounded by
// the snapshot interval.
//
// Two backends ship: Memory (tests, crash simulation with a durability
// watermark) and Dir (one file per segment/snapshot, atomic snapshot
// install via rename).
package storage

import (
	"errors"
	"io"
)

// Segment is an open, appendable journal segment. Write receives whole
// commit batches (the LoggedStore committer's framing); Sync makes
// everything written so far durable.
type Segment interface {
	io.Writer
	Sync() error
	Close() error
}

// Backend is a durable medium holding numbered journal segments and
// store snapshots. Segment numbers only grow; a snapshot numbered N
// covers segments 1..N completely, so recovery is snapshot N plus the
// segments above N, and everything at or below N is garbage.
//
// Implementations must make WriteSnapshot atomic: a snapshot either
// appears complete under its number or not at all (tmp file + rename
// for the Dir backend). Backends need not be goroutine-safe beyond
// one writer — the Engine serialises all mutating calls.
type Backend interface {
	// ListSegments returns the existing segment numbers in ascending
	// order.
	ListSegments() ([]uint64, error)
	// OpenSegment opens segment n for reading.
	OpenSegment(n uint64) (io.ReadCloser, error)
	// CreateSegment creates (or truncates) segment n for appending.
	CreateSegment(n uint64) (Segment, error)
	// TruncateSegment durably truncates segment n to size bytes. The
	// engine uses it during recovery to cut a torn tail off the crashed
	// segment, so a later recovery cannot mistake the tear for
	// mid-journal corruption; the bytes below size must be preserved.
	TruncateSegment(n uint64, size int64) error
	// RemoveSegment deletes segment n.
	RemoveSegment(n uint64) error

	// WriteSnapshot atomically installs a snapshot numbered n with the
	// bytes produced by write. On error nothing is installed.
	WriteSnapshot(n uint64, write func(io.Writer) error) error
	// LoadSnapshot opens the newest snapshot; ok is false when the
	// backend holds none.
	LoadSnapshot() (n uint64, r io.ReadCloser, ok bool, err error)
	// RemoveSnapshotsBelow deletes snapshots numbered strictly below n.
	RemoveSnapshotsBelow(n uint64) error

	// Close releases the backend.
	Close() error
}

// ErrEngineClosed is returned by operations on a closed Engine.
var ErrEngineClosed = errors.New("storage: engine is closed")
