package storage

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Memory is an in-memory Backend. Beyond serving tests and ephemeral
// deployments, it models crash durability precisely enough to drive
// the deterministic kill-point schedules in internal/fault: every
// segment keeps a synced watermark (advanced only by Sync), and
// Crash() yields a new backend holding exactly what a power loss would
// have preserved — synced bytes, plus an optional partial tail of the
// unsynced data to model a torn final write. Fault injection knobs
// make writes or snapshot installs fail on demand, deterministically.
type Memory struct {
	mu    sync.Mutex
	segs  map[uint64]*memSegment
	snaps map[uint64][]byte

	// failWrites, once set, makes every subsequent segment write fail
	// (after accepting failPartial bytes of the first failing write).
	failWrites  bool
	failPartial int
	// failSnapshot makes the next WriteSnapshot fail without
	// installing anything (a crash mid-snapshot: the tmp file is
	// never renamed).
	failSnapshot bool
	// failCreate makes the next CreateSegment fail (an IO error at the
	// segment-roll point of a snapshot).
	failCreate bool
}

type memSegment struct {
	data   []byte
	synced int
	closed bool
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{segs: make(map[uint64]*memSegment), snaps: make(map[uint64][]byte)}
}

// FailWrites arms write-failure injection: the next segment write
// persists only partial bytes and fails; all writes after it fail
// outright. The store above fail-stops on the first error.
func (m *Memory) FailWrites(partial int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failWrites = true
	m.failPartial = partial
}

// FailNextSnapshot makes the next WriteSnapshot fail atomically: no
// snapshot is installed, modelling a crash before the install point.
func (m *Memory) FailNextSnapshot() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failSnapshot = true
}

// FailNextCreateSegment makes the next CreateSegment fail, modelling an
// IO error at the segment-roll point of a snapshot.
func (m *Memory) FailNextCreateSegment() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failCreate = true
}

// Crash returns the backend a recovery would see after a power loss:
// snapshots (installs are atomic) and each segment truncated to its
// synced watermark plus up to extra bytes of unsynced data — extra
// models the pages the OS happened to flush, so extra > 0 produces
// torn final records deterministically.
func (m *Memory) Crash(extra int) *Memory {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemory()
	for n, s := range m.segs {
		keep := s.synced + min(extra, len(s.data)-s.synced)
		c.segs[n] = &memSegment{data: append([]byte(nil), s.data[:keep]...), synced: keep}
	}
	for n, b := range m.snaps {
		c.snaps[n] = append([]byte(nil), b...)
	}
	return c
}

// ListSegments returns segment numbers in ascending order.
func (m *Memory) ListSegments() ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.segs))
	for n := range m.segs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// OpenSegment opens segment n for reading.
func (m *Memory) OpenSegment(n uint64) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.segs[n]
	if !ok {
		return nil, fmt.Errorf("storage: no segment %d", n)
	}
	return io.NopCloser(bytes.NewReader(s.data)), nil
}

// CreateSegment creates segment n for appending.
func (m *Memory) CreateSegment(n uint64) (Segment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failCreate {
		m.failCreate = false
		return nil, fmt.Errorf("storage: injected segment create failure")
	}
	s := &memSegment{}
	m.segs[n] = s
	return &memSegmentWriter{m: m, s: s}, nil
}

// TruncateSegment truncates segment n to size bytes.
func (m *Memory) TruncateSegment(n uint64, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.segs[n]
	if !ok {
		return fmt.Errorf("storage: no segment %d", n)
	}
	if size < int64(len(s.data)) {
		s.data = s.data[:size]
	}
	if int64(s.synced) > int64(len(s.data)) {
		s.synced = len(s.data)
	}
	return nil
}

// RemoveSegment deletes segment n.
func (m *Memory) RemoveSegment(n uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.segs, n)
	return nil
}

// WriteSnapshot installs a snapshot atomically (or not at all).
func (m *Memory) WriteSnapshot(n uint64, write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failSnapshot {
		m.failSnapshot = false
		return fmt.Errorf("storage: injected snapshot failure")
	}
	m.snaps[n] = append([]byte(nil), buf.Bytes()...)
	return nil
}

// LoadSnapshot opens the newest snapshot.
func (m *Memory) LoadSnapshot() (uint64, io.ReadCloser, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best uint64
	var found bool
	for n := range m.snaps {
		if !found || n > best {
			best, found = n, true
		}
	}
	if !found {
		return 0, nil, false, nil
	}
	return best, io.NopCloser(bytes.NewReader(m.snaps[best])), true, nil
}

// RemoveSnapshotsBelow deletes snapshots numbered strictly below n.
func (m *Memory) RemoveSnapshotsBelow(n uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.snaps {
		if k < n {
			delete(m.snaps, k)
		}
	}
	return nil
}

// Close releases the backend (a no-op for memory).
func (m *Memory) Close() error { return nil }

// SegmentBytes reports segment n's total and synced byte counts (for
// tests).
func (m *Memory) SegmentBytes(n uint64) (total, synced int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.segs[n]; ok {
		return len(s.data), s.synced
	}
	return 0, 0
}

type memSegmentWriter struct {
	m *Memory
	s *memSegment
}

// Write appends to the segment, honouring injected failures.
func (w *memSegmentWriter) Write(p []byte) (int, error) {
	w.m.mu.Lock()
	defer w.m.mu.Unlock()
	if w.s.closed {
		return 0, fmt.Errorf("storage: write to closed segment")
	}
	if w.m.failWrites {
		keep := min(w.m.failPartial, len(p))
		w.m.failPartial = 0
		w.s.data = append(w.s.data, p[:keep]...)
		return keep, fmt.Errorf("storage: injected write failure")
	}
	w.s.data = append(w.s.data, p...)
	return len(p), nil
}

// Sync advances the durability watermark.
func (w *memSegmentWriter) Sync() error {
	w.m.mu.Lock()
	defer w.m.mu.Unlock()
	if w.m.failWrites {
		return fmt.Errorf("storage: injected sync failure")
	}
	w.s.synced = len(w.s.data)
	return nil
}

// Close marks the segment writer closed.
func (w *memSegmentWriter) Close() error {
	w.m.mu.Lock()
	defer w.m.mu.Unlock()
	w.s.closed = true
	return nil
}
