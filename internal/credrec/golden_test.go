package credrec

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden on-disk format vectors")

// goldenOps is the canonical operation sequence the on-disk vectors
// are generated from. It touches every opcode. Do not edit: the
// resulting bytes are a frozen format, and changing the sequence
// invalidates the vectors without proving compatibility.
func goldenOps(ls *LoggedStore) {
	login := ls.NewExternal("login", True)
	conf := ls.NewExternal("conf", Unknown)
	fact := ls.NewFact(True)
	member := ls.NewDerived(OpAnd, Of(login), Of(fact))
	guard := ls.NewDerived(OpNor, Not(conf))
	_ = ls.SetState(conf, True)
	_ = ls.MakePermanent(fact)
	_ = ls.MarkDirectUse(member)
	_ = ls.MarkNotify(guard)
	_ = ls.MarkAutoRevoke(member)
	doomed := ls.NewFact(True)
	_ = ls.Invalidate(doomed)
	ls.MarkSourceUnknown("conf")
	ls.MarkSourceFailsafe("conf")
	ls.Sweep()
}

func goldenJournal(t *testing.T) []byte {
	t.Helper()
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	goldenOps(ls)
	if err := ls.Sync(); err != nil {
		t.Fatal(err)
	}
	ls.Close()
	return journal.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden vector (run with -update to generate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: on-disk format changed (%d bytes, want %d).\n"+
			"The journal/snapshot encodings are a frozen format: stores written by\n"+
			"older builds must recover under newer ones. If this change is an\n"+
			"intentional new format version, bump the version (snapshot magic /\n"+
			"docs/STORAGE.md) and regenerate with -update.\ngot  %s\nwant %s",
			name, len(got), len(want), hex.EncodeToString(got), hex.EncodeToString(want))
	}
}

// TestGoldenJournalVector pins the exact bytes of a journal segment.
func TestGoldenJournalVector(t *testing.T) {
	checkGolden(t, "journal_v1.bin", goldenJournal(t))
}

// TestGoldenSnapshotVector pins the exact bytes of a snapshot image.
func TestGoldenSnapshotVector(t *testing.T) {
	st, err := Replay(bytes.NewReader(goldenJournal(t)))
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := st.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot_v1.bin", snap.Bytes())
}

// TestGoldenVectorsRecover proves the checked-in vectors — the bytes an
// old build would have left on disk — still recover, independently of
// the generator above.
func TestGoldenVectorsRecover(t *testing.T) {
	journal, err := os.ReadFile(filepath.Join("testdata", "journal_v1.bin"))
	if err != nil {
		t.Skipf("golden vectors not generated yet: %v", err)
	}
	st, err := Replay(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("golden journal does not replay: %v", err)
	}
	snapBytes, err := os.ReadFile(filepath.Join("testdata", "snapshot_v1.bin"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatalf("golden snapshot does not load: %v", err)
	}
	if !bytes.Equal(st.Image(), snap.Image()) {
		t.Fatal("golden journal and golden snapshot disagree")
	}
}

// TestGoldenRecordFraming pins the frame layout of single records
// inline, so a framing regression is caught even with -update.
func TestGoldenRecordFraming(t *testing.T) {
	cases := []struct {
		name string
		ops  func(*LoggedStore)
		want string // hex: uvarint len | crc32le | payload
	}{
		// payload 0102 = opFact, True(2)
		{"fact-true", func(ls *LoggedStore) { ls.NewFact(True) }, "02 529ff803 0102"},
		// payload 0a = opSweep
		{"sweep", func(ls *LoggedStore) { ls.Sweep() }, "01 697b9f39 0a"},
		// payload: opExternal, "id", Unknown(3)
		{"external", func(ls *LoggedStore) { ls.NewExternal("id", Unknown) }, "05 b4ea40ec 0202696403"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var journal bytes.Buffer
			ls := NewLoggedStore(&journal)
			tc.ops(ls)
			if err := ls.Sync(); err != nil {
				t.Fatal(err)
			}
			ls.Close()
			want := tc.want
			wantHex := ""
			for _, c := range want {
				if c != ' ' {
					wantHex += string(c)
				}
			}
			if got := hex.EncodeToString(journal.Bytes()); got != wantHex {
				t.Fatalf("frame = %s, want %s", got, wantHex)
			}
		})
	}
}
