package credrec

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardedStore partitions a credential-record graph across a set of
// per-shard Stores, routing every operation by reference. It implements
// the full Recorder surface, so the oasis service engine (and anything
// else written against Recorder) runs on a sharded graph unchanged.
//
// # Reference layout
//
// The store cannot place a record "where its ref hashes to", because
// Stores allocate references internally; instead the owning shard id is
// sealed into the top shardIDBits of Ref.Index at allocation time.
// Routing Resolve/SetState/Sweep by ref is then an O(1) bit unpack with
// no ring lookup, and a reference stays resolvable forever even if the
// ring that placed it has since changed shape (docs/SHARDING.md).
//
// # Placement
//
// Leaf records (NewFact, NewExternal) are placed by consistent hashing
// of a minted allocation sequence number, spreading independent
// subgraphs across shards. Derived records are placed on the shard of
// their first parent: a revocation cascade then runs inside one shard's
// writeMu in the common case, which is exactly what makes a
// revocation storm scale with the shard count (bench_shard_test.go).
//
// # Cross-shard cascade edges
//
// When a derived record's parent lives on another shard, the parent
// grows a local *bridge* — an external surrogate record on the child's
// shard, sourced "shard:<owner>" — and the parent itself is flagged
// Notify. The parent's change callback then fans the new state out to
// every bridge (outside all store locks, so cascades chain across any
// number of shards without lock-order hazards), and the child's shard
// propagates it locally. Because bridges are external records keyed by
// source, a suspect shard degrades exactly like a suspect peer service:
// MarkShardUnknown / MarkShardFailsafe reuse the §4.10/§6.8.4 bulk
// transitions, and ResyncShard re-reads the authoritative parent states
// the same way a resync restores a healed source.
//
// # Concurrency
//
// Each underlying Store keeps its own writeMu, so mutations of records
// on different shards proceed in parallel — the point of the exercise.
// ShardedStore itself adds one RWMutex guarding the cross-shard edge
// table; the change-callback hot path skips it entirely while no edges
// exist (atomic count), and edge fan-out copies the bridge list under a
// read lock and applies it after unlocking, so nested cascades re-enter
// freely.
type ShardedStore struct {
	ring   *Ring
	names  []string
	stores []*Store

	allocSeq atomic.Uint64 // ring key mint for leaf placement

	change atomic.Pointer[ChangeFunc] // user observer (OnChange)

	// Cross-shard edge table: global parent ref -> bridge surrogates.
	nEdges  atomic.Int64
	mu      sync.RWMutex
	edges   map[uint64][]bridgeLink
	bridges map[bridgeKey]Ref // (parent, child shard) -> shared bridge (local ref)
}

// bridgeLink is one bridge surrogate mirroring a remote parent.
type bridgeLink struct {
	shard int
	local Ref
}

// bridgeKey dedupes bridges: all derived records on one shard that
// share a remote parent share one surrogate for it.
type bridgeKey struct {
	parent uint64 // global ref of the remote parent
	shard  int    // shard holding the bridge
}

// Shard-id packing in Ref.Index: the top shardIDBits carry the owning
// shard, the remaining bits are the shard-local index.
const (
	shardIDBits   = 6
	shardIDShift  = 32 - shardIDBits
	localIndexMax = 1<<shardIDShift - 1

	// MaxStoreShards is the most shards a ShardedStore supports (the
	// shard-id field width in packed references).
	MaxStoreShards = 1 << shardIDBits
)

// NewShardedStore builds a sharded store over the named shards (order
// is canonicalised by the ring, so any permutation of the same names
// yields identical placement). replicas is the ring's virtual-node
// count per shard; <= 0 selects DefaultRingReplicas.
func NewShardedStore(names []string, replicas int) (*ShardedStore, error) {
	ring, err := NewRing(names, replicas)
	if err != nil {
		return nil, err
	}
	if len(ring.Members()) > MaxStoreShards {
		return nil, fmt.Errorf("credrec: %d shards exceeds the %d-shard reference format", len(ring.Members()), MaxStoreShards)
	}
	ss := &ShardedStore{
		ring:    ring,
		names:   ring.Members(),
		edges:   make(map[uint64][]bridgeLink),
		bridges: make(map[bridgeKey]Ref),
	}
	ss.stores = make([]*Store, len(ss.names))
	for i := range ss.stores {
		st := NewStore()
		i := i
		st.OnChange(func(local Ref, s State, perm bool) {
			g := ss.globalize(i, local)
			if ss.nEdges.Load() > 0 {
				ss.fanout(g.Uint64(), s, perm)
			}
			if f := ss.change.Load(); f != nil && *f != nil {
				(*f)(g, s, perm)
			}
		})
		ss.stores[i] = st
	}
	return ss, nil
}

// NumShards reports the shard count.
func (ss *ShardedStore) NumShards() int { return len(ss.stores) }

// ShardNames returns the canonical (sorted) shard names; index i names
// the shard whose id is packed into references as i.
func (ss *ShardedStore) ShardNames() []string { return ss.names }

// ShardStore exposes one shard's underlying store (tests, benchmarks,
// and per-shard image comparison).
func (ss *ShardedStore) ShardStore(i int) *Store { return ss.stores[i] }

// ShardOf unpacks the owning shard id from a reference.
func (ss *ShardedStore) ShardOf(ref Ref) int { return int(ref.Index >> shardIDShift) }

// BridgeSource is the external-record source name under which a shard's
// bridges appear on other shards; MarkSourceUnknown(BridgeSource(name))
// is what MarkShardUnknown does.
func BridgeSource(shard string) string { return "shard:" + shard }

func (ss *ShardedStore) globalize(shard int, local Ref) Ref {
	if local.Index > localIndexMax {
		panic(fmt.Sprintf("credrec: shard %d local index %d overflows the packed reference format", shard, local.Index))
	}
	return Ref{Index: local.Index | uint32(shard)<<shardIDShift, Magic: local.Magic}
}

// resolveShard routes a global ref to (store, local ref); a shard id
// beyond the ring is a dangling reference (it can only come from a
// larger ring or a corrupted ref, and dangling is the fail-safe answer).
func (ss *ShardedStore) resolveShard(ref Ref) (*Store, Ref, error) {
	id := int(ref.Index >> shardIDShift)
	if id >= len(ss.stores) {
		return nil, Ref{}, ErrDangling
	}
	return ss.stores[id], Ref{Index: ref.Index & localIndexMax, Magic: ref.Magic}, nil
}

// pick places the next leaf allocation via the ring.
func (ss *ShardedStore) pick() int {
	return ss.ring.OwnerIndex(ss.allocSeq.Add(1))
}

// danglingLocal is a reference no store slot can ever match (the local
// index region is far beyond any allocation a test or deployment
// reaches before the packed format overflows first); passing it as a
// parent reproduces Store.NewDerived's broken-parent semantics —
// the child is born permanently false.
var danglingLocal = Ref{Index: localIndexMax, Magic: 0}

// --- Recorder: allocation ---

// NewFact creates a leaf fact on a ring-chosen shard.
func (ss *ShardedStore) NewFact(s State) Ref {
	i := ss.pick()
	return ss.globalize(i, ss.stores[i].NewFact(s))
}

// NewExternal creates a surrogate for a fact held by another service,
// on a ring-chosen shard.
func (ss *ShardedStore) NewExternal(source string, s State) Ref {
	i := ss.pick()
	return ss.globalize(i, ss.stores[i].NewExternal(source, s))
}

// NewDerived creates a derived record on the shard of its first parent
// (cascade locality); parents on other shards are wired through bridge
// surrogates. A dangling parent — including one whose shard id is not
// on the ring — makes the child permanently false, exactly as in the
// single store.
func (ss *ShardedStore) NewDerived(op Op, parents ...Parent) Ref {
	owner := -1
	if len(parents) > 0 {
		if id := int(parents[0].Ref.Index >> shardIDShift); id < len(ss.stores) {
			owner = id
		}
	}
	if owner < 0 {
		owner = ss.pick()
	}
	ownerStore := ss.stores[owner]
	localParents := make([]Parent, 0, len(parents))
	for _, p := range parents {
		pStore, pLocal, err := ss.resolveShard(p.Ref)
		if err != nil {
			localParents = append(localParents, Parent{Ref: danglingLocal, Negated: p.Negated})
			continue
		}
		if pStore == ownerStore {
			localParents = append(localParents, Parent{Ref: pLocal, Negated: p.Negated})
			continue
		}
		br, ok := ss.bridgeFor(owner, p.Ref, pStore, pLocal)
		if !ok {
			localParents = append(localParents, Parent{Ref: danglingLocal, Negated: p.Negated})
			continue
		}
		localParents = append(localParents, Parent{Ref: br, Negated: p.Negated})
	}
	return ss.globalize(owner, ownerStore.NewDerived(op, localParents...))
}

// bridgeFor returns (creating if needed) the bridge surrogate on shard
// `owner` mirroring the remote parent. Returns ok=false when the parent
// is dangling. The parent is flagged Notify so its change callback
// drives the bridge; after registering the edge the parent state is
// re-read and re-applied, closing the race where the parent changed
// between the initial read and the edge becoming visible to fan-out
// (re-applying a state the fan-out also delivered is idempotent).
func (ss *ShardedStore) bridgeFor(owner int, parentGlobal Ref, pStore *Store, pLocal Ref) (Ref, bool) {
	st, perm, err := pStore.Resolve(pLocal)
	if err != nil {
		return Ref{}, false
	}
	pid := int(parentGlobal.Index >> shardIDShift)
	key := bridgeKey{parent: parentGlobal.Uint64(), shard: owner}

	ss.mu.Lock()
	if br, ok := ss.bridges[key]; ok {
		if _, lerr := ss.stores[owner].Lookup(br); lerr == nil {
			ss.mu.Unlock()
			return br, true
		}
		delete(ss.bridges, key) // bridge was swept; rebuild
	}
	ss.mu.Unlock()

	if merr := pStore.MarkNotify(pLocal); merr != nil {
		return Ref{}, false // swept between Resolve and MarkNotify
	}
	br := ss.stores[owner].NewExternal(BridgeSource(ss.names[pid]), st)
	applyBridge(ss.stores[owner], br, st, perm)

	ss.mu.Lock()
	if existing, ok := ss.bridges[key]; ok {
		// Lost a creation race; keep the winner, ours stays an orphan
		// external with no children and is swept eventually.
		ss.mu.Unlock()
		return existing, true
	}
	ss.bridges[key] = br
	ss.edges[key.parent] = append(ss.edges[key.parent], bridgeLink{shard: owner, local: br})
	ss.nEdges.Add(1)
	ss.mu.Unlock()

	// Close the registration race: a parent transition that drained
	// before the edge existed is re-read here; one that drains after
	// will see the edge.
	if st2, perm2, err2 := pStore.Resolve(pLocal); err2 == nil && (st2 != st || perm2 != perm) {
		applyBridge(ss.stores[owner], br, st2, perm2)
	} else if err2 != nil {
		applyBridge(ss.stores[owner], br, False, true)
	}
	return br, true
}

// applyBridge mirrors a parent (state, permanence) onto a bridge
// surrogate. Errors are ignored by design: they only arise when the
// bridge is already permanent (a sticky permanent False must not be
// overwritten — same rule as the wire protocol's applyModified) or
// already swept.
func applyBridge(st *Store, local Ref, s State, perm bool) {
	if perm && s == False {
		_ = st.Invalidate(local)
		return
	}
	_ = st.SetState(local, s)
	if perm {
		_ = st.MakePermanent(local)
	}
}

// fanout applies a parent's new state to every bridge mirroring it. The
// bridge list is copied under the read lock and applied after release:
// applying re-enters stores (and, through their change callbacks, this
// method again for chained cross-shard cascades), which must happen
// with no ShardedStore lock held. A permanent transition retires the
// edge — the value can never change again, so the bridges are final.
func (ss *ShardedStore) fanout(parent uint64, s State, perm bool) {
	ss.mu.RLock()
	links := ss.edges[parent]
	copied := make([]bridgeLink, len(links))
	copy(copied, links)
	ss.mu.RUnlock()
	if len(copied) == 0 {
		return
	}
	if perm {
		ss.mu.Lock()
		if links := ss.edges[parent]; len(links) > 0 {
			delete(ss.edges, parent)
			ss.nEdges.Add(int64(-len(links)))
			for _, l := range links {
				delete(ss.bridges, bridgeKey{parent: parent, shard: l.shard})
			}
		}
		ss.mu.Unlock()
	}
	for _, l := range copied {
		applyBridge(ss.stores[l.shard], l.local, s, perm)
	}
}

// --- Recorder: transitions, flags ---

// SetState routes to the owning shard.
func (ss *ShardedStore) SetState(ref Ref, s State) error {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return err
	}
	return st.SetState(local, s)
}

// Invalidate routes to the owning shard.
func (ss *ShardedStore) Invalidate(ref Ref) error {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return err
	}
	return st.Invalidate(local)
}

// MakePermanent routes to the owning shard.
func (ss *ShardedStore) MakePermanent(ref Ref) error {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return err
	}
	return st.MakePermanent(local)
}

// MarkDirectUse routes to the owning shard.
func (ss *ShardedStore) MarkDirectUse(ref Ref) error {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return err
	}
	return st.MarkDirectUse(local)
}

// MarkNotify routes to the owning shard.
func (ss *ShardedStore) MarkNotify(ref Ref) error {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return err
	}
	return st.MarkNotify(local)
}

// MarkAutoRevoke routes to the owning shard.
func (ss *ShardedStore) MarkAutoRevoke(ref Ref) error {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return err
	}
	return st.MarkAutoRevoke(local)
}

// --- Recorder: bulk source transitions ---

// MarkSourceUnknown degrades every external record from the source on
// every shard (§4.10).
func (ss *ShardedStore) MarkSourceUnknown(source string) int {
	n := 0
	for _, st := range ss.stores {
		n += st.MarkSourceUnknown(source)
	}
	return n
}

// MarkSourceFailsafe fails every external record from the source safe
// to False, on every shard (§6.8.4).
func (ss *ShardedStore) MarkSourceFailsafe(source string) int {
	n := 0
	for _, st := range ss.stores {
		n += st.MarkSourceFailsafe(source)
	}
	return n
}

// --- Shard suspicion: the cross-shard analogue of source suspicion ---

// MarkShardUnknown degrades every bridge mirroring a record owned by
// the named shard to Unknown: the shard is suspect, so nothing derived
// from its records may validate until it is heard from again. Cheap to
// undo — ResyncShard restores the truth.
func (ss *ShardedStore) MarkShardUnknown(name string) int {
	return ss.MarkSourceUnknown(BridgeSource(name))
}

// MarkShardFailsafe fails every bridge mirroring the named shard's
// records safe to False — the fail-safe demotion after a shard stays
// suspect too long. Non-permanent, exactly like MarkSourceFailsafe: the
// facts may still hold, this holder simply cannot confirm them.
func (ss *ShardedStore) MarkShardFailsafe(name string) int {
	return ss.MarkSourceFailsafe(BridgeSource(name))
}

// ResyncShard re-reads the authoritative state of every record the
// named shard owns that has bridges elsewhere, and re-applies it — the
// recovery half of shard suspicion, mirroring the §4.10 resync
// protocol. Idempotent: re-applying current state is a no-op. Returns
// the number of bridges refreshed.
func (ss *ShardedStore) ResyncShard(name string) int {
	id := -1
	for i, n := range ss.names {
		if n == name {
			id = i
		}
	}
	if id < 0 {
		return 0
	}
	type job struct {
		parent uint64
		links  []bridgeLink
	}
	ss.mu.RLock()
	var jobs []job
	for parent, links := range ss.edges {
		if int(parent>>32)>>shardIDShift == id {
			jobs = append(jobs, job{parent: parent, links: append([]bridgeLink(nil), links...)})
		}
	}
	ss.mu.RUnlock()
	n := 0
	for _, j := range jobs {
		_, local, err := ss.resolveShard(RefFromUint64(j.parent))
		if err != nil {
			continue
		}
		st, perm, rerr := ss.stores[id].Resolve(local)
		if rerr != nil {
			st, perm = False, true
		}
		for _, l := range j.links {
			applyBridge(ss.stores[l.shard], l.local, st, perm)
			n++
		}
	}
	return n
}

// --- Recorder: GC ---

// Sweep garbage-collects every shard and prunes cross-shard edges whose
// parent or bridge was deleted.
func (ss *ShardedStore) Sweep() int {
	n := 0
	for _, st := range ss.stores {
		n += st.Sweep()
	}
	ss.mu.Lock()
	for parent, links := range ss.edges {
		_, pLocal, perr := ss.resolveShard(RefFromUint64(parent))
		pGone := perr != nil
		if !pGone {
			pid := int(parent >> 32 >> shardIDShift)
			if _, err := ss.stores[pid].Lookup(pLocal); err != nil {
				pGone = true
			}
		}
		kept := links[:0]
		for _, l := range links {
			if _, err := ss.stores[l.shard].Lookup(l.local); err != nil || pGone {
				ss.nEdges.Add(-1)
				delete(ss.bridges, bridgeKey{parent: parent, shard: l.shard})
				continue
			}
			kept = append(kept, l)
		}
		if len(kept) == 0 {
			delete(ss.edges, parent)
		} else {
			ss.edges[parent] = kept
		}
	}
	ss.mu.Unlock()
	return n
}

// --- Recorder: read paths ---

// Lookup routes to the owning shard; an off-ring shard id is dangling.
func (ss *ShardedStore) Lookup(ref Ref) (State, error) {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return False, err
	}
	return st.Lookup(local)
}

// Valid routes to the owning shard.
func (ss *ShardedStore) Valid(ref Ref) bool {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return false
	}
	return st.Valid(local)
}

// Resolve routes to the owning shard; an off-ring shard id reads as
// permanently false, like any dangling reference.
func (ss *ShardedStore) Resolve(ref Ref) (State, bool, error) {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return False, true, err
	}
	return st.Resolve(local)
}

// AutoRevoke routes to the owning shard.
func (ss *ShardedStore) AutoRevoke(ref Ref) bool {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return false
	}
	return st.AutoRevoke(local)
}

// External routes to the owning shard.
func (ss *ShardedStore) External(ref Ref) string {
	st, local, err := ss.resolveShard(ref)
	if err != nil {
		return ""
	}
	return st.External(local)
}

// ExternalRefs gathers a source's external records across every shard,
// globalised, in shard order.
func (ss *ShardedStore) ExternalRefs(source string) []Ref {
	var out []Ref
	for i, st := range ss.stores {
		for _, local := range st.ExternalRefs(source) {
			out = append(out, ss.globalize(i, local))
		}
	}
	return out
}

// --- Recorder: observation ---

// OnChange installs the change observer; it fires for Notify-flagged
// records on any shard, with globalised references.
func (ss *ShardedStore) OnChange(f ChangeFunc) {
	ss.change.Store(&f)
}

// Image renders every shard's image in shard-id order under a shard
// header: a deterministic fingerprint of the whole partitioned graph.
// Two sharded stores that evolved through the same logical history
// produce byte-identical images (the chaos suite compares them).
func (ss *ShardedStore) Image() []byte {
	var b bytes.Buffer
	for i, st := range ss.stores {
		fmt.Fprintf(&b, "-- shard %d %q\n", i, ss.names[i])
		b.Write(st.Image())
	}
	return b.Bytes()
}

// Live sums live records over every shard (bridges included — they are
// real records).
func (ss *ShardedStore) Live() int {
	n := 0
	for _, st := range ss.stores {
		n += st.Live()
	}
	return n
}

// Stats sums cumulative creations and deletions over every shard.
func (ss *ShardedStore) Stats() (created, deleted uint64) {
	for _, st := range ss.stores {
		c, d := st.Stats()
		created += c
		deleted += d
	}
	return created, deleted
}

// Interface conformance: a sharded graph is a drop-in Recorder.
var _ Recorder = (*ShardedStore)(nil)
