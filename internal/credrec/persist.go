package credrec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Persistent credential records (§4.8 / [Lo94 6.4]): the (index, magic)
// reference scheme works unchanged for records kept in stable storage.
// LoggedStore wraps a Store and journals every mutation as one text
// line; Replay re-executes a journal to rebuild an identical store —
// identical including the references themselves, because allocation is
// deterministic in the operation order. Certificates issued before a
// crash therefore validate correctly after recovery, and revocations
// performed before the crash stay revoked.

// LoggedStore journals mutations of an underlying Store. The
// apply-then-journal pair runs under one mutex, so concurrent mutators
// cannot interleave an apply order different from the journal order —
// replaying the journal at any instant reproduces the store exactly,
// even while a revocation cascade is in flight on another goroutine.
// The one restriction that buys: a change callback (Store.OnChange)
// must not mutate the same LoggedStore re-entrantly, since the
// triggering mutation still holds the journal lock when callbacks fire.
type LoggedStore struct {
	*Store
	mu sync.Mutex
	w  io.Writer
}

// NewLoggedStore wraps an empty store with a journal writer. Wrapping a
// non-empty store would desynchronise replay; start from NewStore().
func NewLoggedStore(w io.Writer) *LoggedStore {
	return &LoggedStore{Store: NewStore(), w: w}
}

// log appends one journal line; caller holds ls.mu.
func (ls *LoggedStore) log(format string, args ...any) {
	fmt.Fprintf(ls.w, format+"\n", args...)
}

// Snapshot runs f with the journal lock held and no mutation in
// flight: f can copy the journal writer's backing storage and get a
// consistent image (a torn copy taken mid-mutation would journal an
// allocation whose cascade it missed).
func (ls *LoggedStore) Snapshot(f func()) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	f()
}

// NewFact journals and performs.
func (ls *LoggedStore) NewFact(s State) Ref {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.log("fact %d", int(s))
	return ls.Store.NewFact(s)
}

// NewExternal journals and performs.
func (ls *LoggedStore) NewExternal(source string, s State) Ref {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.log("ext %q %d", source, int(s))
	return ls.Store.NewExternal(source, s)
}

// NewDerived journals and performs.
func (ls *LoggedStore) NewDerived(op Op, parents ...Parent) Ref {
	var b strings.Builder
	fmt.Fprintf(&b, "derived %d", int(op))
	for _, p := range parents {
		neg := 0
		if p.Negated {
			neg = 1
		}
		fmt.Fprintf(&b, " %d:%d", p.Ref.Uint64(), neg)
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.log("%s", b.String())
	return ls.Store.NewDerived(op, parents...)
}

// SetState performs and, on success, journals.
func (ls *LoggedStore) SetState(ref Ref, s State) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.SetState(ref, s); err != nil {
		return err
	}
	ls.log("set %d %d", ref.Uint64(), int(s))
	return nil
}

// Invalidate performs and, on success, journals.
func (ls *LoggedStore) Invalidate(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.Invalidate(ref); err != nil {
		return err
	}
	ls.log("invalidate %d", ref.Uint64())
	return nil
}

// MakePermanent performs and, on success, journals.
func (ls *LoggedStore) MakePermanent(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.MakePermanent(ref); err != nil {
		return err
	}
	ls.log("permanent %d", ref.Uint64())
	return nil
}

// MarkDirectUse performs and, on success, journals.
func (ls *LoggedStore) MarkDirectUse(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.MarkDirectUse(ref); err != nil {
		return err
	}
	ls.log("directuse %d", ref.Uint64())
	return nil
}

// MarkNotify performs and, on success, journals.
func (ls *LoggedStore) MarkNotify(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.MarkNotify(ref); err != nil {
		return err
	}
	ls.log("notify %d", ref.Uint64())
	return nil
}

// MarkAutoRevoke performs and, on success, journals.
func (ls *LoggedStore) MarkAutoRevoke(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.MarkAutoRevoke(ref); err != nil {
		return err
	}
	ls.log("autorevoke %d", ref.Uint64())
	return nil
}

// Sweep journals and performs: the garbage collector's slot reuse is
// deterministic, so replay reproduces the same free list.
func (ls *LoggedStore) Sweep() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.log("sweep")
	return ls.Store.Sweep()
}

// Replay rebuilds a store by re-executing a journal.
func Replay(r io.Reader) (*Store, error) {
	st := NewStore()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		bad := func(err error) error {
			return fmt.Errorf("credrec: journal line %d (%q): %v", line, text, err)
		}
		argInt := func(i int) (uint64, error) {
			if i >= len(fields) {
				return 0, fmt.Errorf("missing field %d", i)
			}
			return strconv.ParseUint(fields[i], 10, 64)
		}
		switch fields[0] {
		case "fact":
			s, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			st.NewFact(State(s))
		case "ext":
			if len(fields) < 3 {
				return nil, bad(fmt.Errorf("want source and state"))
			}
			source, err := strconv.Unquote(fields[1])
			if err != nil {
				return nil, bad(err)
			}
			s, err := argInt(2)
			if err != nil {
				return nil, bad(err)
			}
			st.NewExternal(source, State(s))
		case "derived":
			op, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			var parents []Parent
			for _, f := range fields[2:] {
				refStr, negStr, ok := strings.Cut(f, ":")
				if !ok {
					return nil, bad(fmt.Errorf("bad parent %q", f))
				}
				u, err := strconv.ParseUint(refStr, 10, 64)
				if err != nil {
					return nil, bad(err)
				}
				parents = append(parents, Parent{Ref: RefFromUint64(u), Negated: negStr == "1"})
			}
			st.NewDerived(Op(op), parents...)
		case "set":
			u, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			s, err := argInt(2)
			if err != nil {
				return nil, bad(err)
			}
			if err := st.SetState(RefFromUint64(u), State(s)); err != nil {
				return nil, bad(err)
			}
		case "invalidate":
			u, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			if err := st.Invalidate(RefFromUint64(u)); err != nil {
				return nil, bad(err)
			}
		case "permanent":
			u, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			if err := st.MakePermanent(RefFromUint64(u)); err != nil {
				return nil, bad(err)
			}
		case "directuse", "notify", "autorevoke":
			u, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			ref := RefFromUint64(u)
			var merr error
			switch fields[0] {
			case "directuse":
				merr = st.MarkDirectUse(ref)
			case "notify":
				merr = st.MarkNotify(ref)
			case "autorevoke":
				merr = st.MarkAutoRevoke(ref)
			}
			if merr != nil {
				return nil, bad(merr)
			}
		case "sweep":
			st.Sweep()
		default:
			return nil, bad(fmt.Errorf("unknown op"))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return st, nil
}
