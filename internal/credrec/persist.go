package credrec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"oasis/internal/bus"
)

// Persistent credential records (§4.8 / [Lo94 6.4]): the (index, magic)
// reference scheme works unchanged for records kept in stable storage.
// LoggedStore wraps a Store and journals every mutation as one binary
// record (journal.go); Replay re-executes a journal to rebuild an
// identical store — identical including the references themselves,
// because allocation is deterministic in the operation order.
// Certificates issued before a crash therefore validate correctly
// after recovery, and revocations performed before the crash stay
// revoked.
//
// # Group commit
//
// Durability is decoupled from application. A mutator, under ls.mu,
// applies the operation to the in-memory store and appends the encoded
// record to a commit queue; a single committer goroutine drains the
// queue, writes the whole batch to the sink with one Write, and issues
// at most one Sync per batch. N concurrent mutators therefore pay ~1
// flush+fsync between them instead of N — the classic group commit.
// What a mutator's return means depends on the SyncPolicy:
//
//	SyncAlways  the record is on stable storage when the call returns
//	            (the call blocks until the committer's fsync covers it;
//	            concurrent callers share one fsync)
//	SyncBatched the record is queued; the committer fsyncs once per
//	            drained batch, so the window of loss is one batch
//	SyncNone    the committer writes but never syncs; durability is
//	            whenever the OS gets to it
//
// The apply-then-enqueue pair runs under one mutex, so concurrent
// mutators cannot interleave an apply order different from the journal
// order — replaying the journal at any instant reproduces the store
// exactly, even while a revocation cascade is in flight on another
// goroutine. The one restriction that buys: a change callback
// (Store.OnChange) must not mutate the same LoggedStore re-entrantly,
// since the triggering mutation still holds the journal lock when
// callbacks fire.
//
// # Failure mode
//
// A journal write or sync failure makes the store fail-stop: the first
// error is sticky, every subsequent mutation is refused before it
// touches the in-memory store (error-returning methods return the
// journal error; allocators return the zero Ref, which never
// resolves), and Err/Sync report it. Without this, a failed write
// would leave the store mutated but the operation unjournaled — a
// recovery that silently forgets a revocation.

// SyncPolicy selects when the committer makes journal batches durable.
type SyncPolicy int

// Commit durability policies.
const (
	SyncBatched SyncPolicy = iota // one Sync per drained batch (default)
	SyncAlways                    // mutators block until their record is synced
	SyncNone                      // never Sync; the OS decides
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatched:
		return "batched"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -sync flag spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batched":
		return SyncBatched, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("credrec: unknown sync policy %q (want always, batched or none)", s)
	}
}

// JournalSink is the durable destination of committed batches. File
// segments (internal/credrec/storage) implement Sync as fsync; plain
// io.Writer sinks are adapted with a no-op Sync.
type JournalSink interface {
	io.Writer
	Sync() error
}

// writerSink adapts any io.Writer into a JournalSink.
type writerSink struct{ w io.Writer }

func (s writerSink) Write(p []byte) (int, error) { return s.w.Write(p) }

// Sync forwards to the writer if it can sync, else does nothing.
func (s writerSink) Sync() error {
	if f, ok := s.w.(interface{ Sync() error }); ok {
		return f.Sync()
	}
	return nil
}

// JournalOptions configure a LoggedStore's commit pipeline.
type JournalOptions struct {
	// Sync is the durability policy (default SyncBatched).
	Sync SyncPolicy
	// OnCommit, if set, observes each committed batch (records and
	// bytes written). It runs on the committer goroutine after the
	// batch is durable and must not block or call back into the store's
	// mutation/Snapshot surface; the storage engine uses it to trigger
	// snapshots.
	OnCommit func(records, bytes int)
}

// ErrStoreClosed is returned by mutations on a closed LoggedStore.
var ErrStoreClosed = errors.New("credrec: logged store is closed")

// LoggedStore journals mutations of an underlying Store with group
// commit; see the package comment above.
type LoggedStore struct {
	*Store

	mu       sync.Mutex
	condWork sync.Cond // committer waits: queue non-empty or closed
	condDone sync.Cond // mutators/Sync wait: commit advanced

	sink   JournalSink
	policy SyncPolicy
	onCmt  func(records, bytes int)

	queue  []byte // encoded frames awaiting commit (guarded by mu)
	spare  []byte // recycled batch buffer
	seq    uint64 // records enqueued
	commit uint64 // records handed to the sink (synced per policy)
	err    error  // sticky journal failure
	closed bool

	scratch bytes.Buffer // payload staging, guarded by mu
	enc     *bus.WireEnc

	committerDone chan struct{}
}

// NewLoggedStore wraps an empty store with a journal writer using the
// default SyncBatched policy. Wrapping a non-empty store would
// desynchronise replay; recovered stores use NewLoggedStoreWith.
func NewLoggedStore(w io.Writer) *LoggedStore {
	return NewLoggedStoreWith(NewStore(), writerSink{w}, JournalOptions{})
}

// NewLoggedStoreWith wraps st — empty, or freshly rebuilt by
// ReadSnapshot/ReplayInto — with a journal sink. The sink must be
// positioned so that st's state plus the records appended from now on
// replays to the store's future states (a new segment, for the storage
// engine). The committer goroutine runs until Close.
func NewLoggedStoreWith(st *Store, sink JournalSink, opts JournalOptions) *LoggedStore {
	ls := &LoggedStore{
		Store:         st,
		sink:          sink,
		policy:        opts.Sync,
		onCmt:         opts.OnCommit,
		committerDone: make(chan struct{}),
	}
	ls.condWork.L = &ls.mu
	ls.condDone.L = &ls.mu
	ls.enc = bus.NewWireEnc(&ls.scratch)
	go ls.committer()
	return ls
}

// committer drains the commit queue: one Write and at most one Sync
// per batch, regardless of how many mutators contributed records.
func (ls *LoggedStore) committer() {
	defer close(ls.committerDone)
	for {
		ls.mu.Lock()
		for len(ls.queue) == 0 && !ls.closed {
			ls.condWork.Wait()
		}
		if len(ls.queue) == 0 { // closed and drained
			ls.mu.Unlock()
			return
		}
		batch := ls.queue
		target := ls.seq
		recs := int(target - ls.commit)
		ls.queue = ls.spare[:0]
		ls.spare = nil
		sink := ls.sink
		ls.mu.Unlock()

		var werr error
		if _, werr = sink.Write(batch); werr == nil && ls.policy != SyncNone {
			werr = sink.Sync()
		}

		ls.mu.Lock()
		ls.commit = target
		if werr != nil && ls.err == nil {
			ls.err = werr
		}
		ls.spare = batch[:0]
		done := ls.err
		ls.condDone.Broadcast()
		ls.mu.Unlock()

		if ls.onCmt != nil && done == nil {
			ls.onCmt(recs, len(batch))
		}
	}
}

// enqueueLocked frames the staged payload onto the commit queue; the
// caller holds ls.mu and has already applied the operation.
func (ls *LoggedStore) enqueueLocked() uint64 {
	ls.queue = appendRecord(ls.queue, ls.scratch.Bytes())
	ls.seq++
	ls.condWork.Signal()
	return ls.seq
}

// waitLocked blocks (policy SyncAlways) until record seq is durable.
func (ls *LoggedStore) waitLocked(seq uint64) error {
	if ls.policy != SyncAlways {
		return nil
	}
	for ls.commit < seq && ls.err == nil {
		ls.condDone.Wait()
	}
	return ls.err
}

// refuseLocked reports why mutations are currently rejected.
func (ls *LoggedStore) refuseLocked() error {
	if ls.err != nil {
		return fmt.Errorf("credrec: store is fail-stopped: %w", ls.err)
	}
	if ls.closed {
		return ErrStoreClosed
	}
	return nil
}

// Err returns the sticky journal failure, if any.
func (ls *LoggedStore) Err() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.err
}

// Sync blocks until every enqueued record has been written (and, for
// policies other than SyncNone, synced), returning the sticky error.
func (ls *LoggedStore) Sync() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	target := ls.seq
	for ls.commit < target && ls.err == nil {
		ls.condDone.Wait()
	}
	return ls.err
}

// Close drains the queue, stops the committer and marks the store
// closed; further mutations return ErrStoreClosed. The underlying
// store remains readable.
func (ls *LoggedStore) Close() error {
	ls.mu.Lock()
	if ls.closed {
		ls.mu.Unlock()
		<-ls.committerDone
		return ls.Err()
	}
	ls.closed = true
	ls.condWork.Broadcast()
	ls.mu.Unlock()
	<-ls.committerDone
	return ls.Err()
}

// Snapshot runs f with the journal fully drained, no mutation in
// flight and the committer idle: f sees a store state that the sink's
// contents replay to exactly, so it can copy the journal, write a
// Store snapshot, or swap the sink (SetSink) to roll a segment. A torn
// copy taken mid-mutation would journal an allocation whose cascade it
// missed; the barrier makes that impossible.
func (ls *LoggedStore) Snapshot(f func()) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	for ls.commit < ls.seq && ls.err == nil {
		ls.condDone.Wait()
	}
	f()
}

// SetSink redirects subsequent commits to a new sink. It must only be
// called from within a Snapshot barrier (the committer is idle there),
// by the storage engine when it rolls journal segments.
func (ls *LoggedStore) SetSink(s JournalSink) { ls.sink = s }

// Pending reports the number of enqueued-but-uncommitted records (for
// tests and engine introspection).
func (ls *LoggedStore) Pending() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return int(ls.seq - ls.commit)
}

// ---- journaled mutations ----

// NewFact journals and performs. On a fail-stopped or closed store it
// performs nothing and returns the zero Ref (which never resolves).
func (ls *LoggedStore) NewFact(s State) Ref {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.refuseLocked() != nil {
		return Ref{}
	}
	ref := ls.Store.NewFact(s)
	ls.scratch.Reset()
	ls.enc.PutByte(opFact)
	ls.enc.PutUvarint(uint64(s))
	if ls.waitLocked(ls.enqueueLocked()) != nil {
		return Ref{} // SyncAlways: the record never became durable
	}
	return ref
}

// NewExternal journals and performs; zero Ref on a failed store.
func (ls *LoggedStore) NewExternal(source string, s State) Ref {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.refuseLocked() != nil {
		return Ref{}
	}
	ref := ls.Store.NewExternal(source, s)
	ls.scratch.Reset()
	ls.enc.PutByte(opExternal)
	ls.enc.PutString(source)
	ls.enc.PutUvarint(uint64(s))
	if ls.waitLocked(ls.enqueueLocked()) != nil {
		return Ref{} // SyncAlways: the record never became durable
	}
	return ref
}

// NewDerived journals and performs; zero Ref on a failed store.
func (ls *LoggedStore) NewDerived(op Op, parents ...Parent) Ref {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.refuseLocked() != nil {
		return Ref{}
	}
	ref := ls.Store.NewDerived(op, parents...)
	ls.scratch.Reset()
	ls.enc.PutByte(opDerived)
	ls.enc.PutUvarint(uint64(op))
	ls.enc.PutUvarint(uint64(len(parents)))
	for _, p := range parents {
		ls.enc.PutUvarint(p.Ref.Uint64())
		ls.enc.PutBool(p.Negated)
	}
	if ls.waitLocked(ls.enqueueLocked()) != nil {
		return Ref{} // SyncAlways: the record never became durable
	}
	return ref
}

// refOp performs apply(), journals (opcode, ref) on success, and — for
// SyncAlways — waits for durability.
func (ls *LoggedStore) refOp(opcode byte, ref Ref, apply func() error) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.refuseLocked(); err != nil {
		return err
	}
	if err := apply(); err != nil {
		return err
	}
	ls.scratch.Reset()
	ls.enc.PutByte(opcode)
	ls.enc.PutUvarint(ref.Uint64())
	return ls.waitLocked(ls.enqueueLocked())
}

// SetState performs and, on success, journals.
func (ls *LoggedStore) SetState(ref Ref, s State) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.refuseLocked(); err != nil {
		return err
	}
	if err := ls.Store.SetState(ref, s); err != nil {
		return err
	}
	ls.scratch.Reset()
	ls.enc.PutByte(opSet)
	ls.enc.PutUvarint(ref.Uint64())
	ls.enc.PutUvarint(uint64(s))
	return ls.waitLocked(ls.enqueueLocked())
}

// Invalidate performs and, on success, journals.
func (ls *LoggedStore) Invalidate(ref Ref) error {
	return ls.refOp(opInvalidate, ref, func() error { return ls.Store.Invalidate(ref) })
}

// MakePermanent performs and, on success, journals.
func (ls *LoggedStore) MakePermanent(ref Ref) error {
	return ls.refOp(opPermanent, ref, func() error { return ls.Store.MakePermanent(ref) })
}

// MarkDirectUse performs and, on success, journals.
func (ls *LoggedStore) MarkDirectUse(ref Ref) error {
	return ls.refOp(opDirectUse, ref, func() error { return ls.Store.MarkDirectUse(ref) })
}

// MarkNotify performs and, on success, journals.
func (ls *LoggedStore) MarkNotify(ref Ref) error {
	return ls.refOp(opNotify, ref, func() error { return ls.Store.MarkNotify(ref) })
}

// MarkAutoRevoke performs and, on success, journals.
func (ls *LoggedStore) MarkAutoRevoke(ref Ref) error {
	return ls.refOp(opAutoRevoke, ref, func() error { return ls.Store.MarkAutoRevoke(ref) })
}

// Sweep journals and performs: the garbage collector's slot reuse is
// deterministic, so replay reproduces the same free list. On a failed
// store it deletes nothing.
func (ls *LoggedStore) Sweep() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.refuseLocked() != nil {
		return 0
	}
	n := ls.Store.Sweep()
	ls.scratch.Reset()
	ls.enc.PutByte(opSweep)
	ls.waitLocked(ls.enqueueLocked())
	return n
}

// sourceOp journals (opcode, source) and performs.
func (ls *LoggedStore) sourceOp(opcode byte, source string, apply func() int) int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.refuseLocked() != nil {
		return 0
	}
	n := apply()
	ls.scratch.Reset()
	ls.enc.PutByte(opcode)
	ls.enc.PutString(source)
	ls.waitLocked(ls.enqueueLocked())
	return n
}

// MarkSourceUnknown journals and performs, so the suspicion machinery's
// bulk transitions replay too (the text journal silently skipped them,
// desynchronising recovered state from the live store).
func (ls *LoggedStore) MarkSourceUnknown(source string) int {
	return ls.sourceOp(opSourceUnknown, source, func() int { return ls.Store.MarkSourceUnknown(source) })
}

// MarkSourceFailsafe journals and performs.
func (ls *LoggedStore) MarkSourceFailsafe(source string) int {
	return ls.sourceOp(opSourceFailsafe, source, func() int { return ls.Store.MarkSourceFailsafe(source) })
}
