package credrec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// The original text journal: one fmt.Fprintf line per mutation under a
// single mutex, no batching, no sync. It is kept as the measured
// baseline for the binary group-commit journal (bench_persist_test.go,
// EXPERIMENTS.md E32) and as the reader for pre-engine journals.

// TextLoggedStore journals mutations of an underlying Store as text
// lines, one synchronous Fprintf per operation. Deprecated in favour
// of LoggedStore; retained as the performance baseline and for
// migrating old journals (ReplayText).
type TextLoggedStore struct {
	*Store
	mu sync.Mutex
	w  io.Writer
}

// NewTextLoggedStore wraps an empty store with a text journal writer.
func NewTextLoggedStore(w io.Writer) *TextLoggedStore {
	return &TextLoggedStore{Store: NewStore(), w: w}
}

// log appends one journal line; caller holds ls.mu.
func (ls *TextLoggedStore) log(format string, args ...any) {
	fmt.Fprintf(ls.w, format+"\n", args...)
}

// Snapshot runs f with the journal lock held and no mutation in flight.
func (ls *TextLoggedStore) Snapshot(f func()) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	f()
}

// NewFact journals and performs.
func (ls *TextLoggedStore) NewFact(s State) Ref {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.log("fact %d", int(s))
	return ls.Store.NewFact(s)
}

// NewExternal journals and performs.
func (ls *TextLoggedStore) NewExternal(source string, s State) Ref {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.log("ext %q %d", source, int(s))
	return ls.Store.NewExternal(source, s)
}

// NewDerived journals and performs.
func (ls *TextLoggedStore) NewDerived(op Op, parents ...Parent) Ref {
	var b strings.Builder
	fmt.Fprintf(&b, "derived %d", int(op))
	for _, p := range parents {
		neg := 0
		if p.Negated {
			neg = 1
		}
		fmt.Fprintf(&b, " %d:%d", p.Ref.Uint64(), neg)
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.log("%s", b.String())
	return ls.Store.NewDerived(op, parents...)
}

// SetState performs and, on success, journals.
func (ls *TextLoggedStore) SetState(ref Ref, s State) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.SetState(ref, s); err != nil {
		return err
	}
	ls.log("set %d %d", ref.Uint64(), int(s))
	return nil
}

// Invalidate performs and, on success, journals.
func (ls *TextLoggedStore) Invalidate(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.Invalidate(ref); err != nil {
		return err
	}
	ls.log("invalidate %d", ref.Uint64())
	return nil
}

// MakePermanent performs and, on success, journals.
func (ls *TextLoggedStore) MakePermanent(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.MakePermanent(ref); err != nil {
		return err
	}
	ls.log("permanent %d", ref.Uint64())
	return nil
}

// MarkDirectUse performs and, on success, journals.
func (ls *TextLoggedStore) MarkDirectUse(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.MarkDirectUse(ref); err != nil {
		return err
	}
	ls.log("directuse %d", ref.Uint64())
	return nil
}

// MarkNotify performs and, on success, journals.
func (ls *TextLoggedStore) MarkNotify(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.MarkNotify(ref); err != nil {
		return err
	}
	ls.log("notify %d", ref.Uint64())
	return nil
}

// MarkAutoRevoke performs and, on success, journals.
func (ls *TextLoggedStore) MarkAutoRevoke(ref Ref) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if err := ls.Store.MarkAutoRevoke(ref); err != nil {
		return err
	}
	ls.log("autorevoke %d", ref.Uint64())
	return nil
}

// Sweep journals and performs.
func (ls *TextLoggedStore) Sweep() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.log("sweep")
	return ls.Store.Sweep()
}

// ReplayText rebuilds a store by re-executing a text journal written by
// TextLoggedStore (the pre-engine on-disk format).
func ReplayText(r io.Reader) (*Store, error) {
	st := NewStore()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		bad := func(err error) error {
			return fmt.Errorf("credrec: journal line %d (%q): %v", line, text, err)
		}
		argInt := func(i int) (uint64, error) {
			if i >= len(fields) {
				return 0, fmt.Errorf("missing field %d", i)
			}
			return strconv.ParseUint(fields[i], 10, 64)
		}
		switch fields[0] {
		case "fact":
			s, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			st.NewFact(State(s))
		case "ext":
			if len(fields) < 3 {
				return nil, bad(fmt.Errorf("want source and state"))
			}
			source, err := strconv.Unquote(fields[1])
			if err != nil {
				return nil, bad(err)
			}
			s, err := argInt(2)
			if err != nil {
				return nil, bad(err)
			}
			st.NewExternal(source, State(s))
		case "derived":
			op, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			var parents []Parent
			for _, f := range fields[2:] {
				refStr, negStr, ok := strings.Cut(f, ":")
				if !ok {
					return nil, bad(fmt.Errorf("bad parent %q", f))
				}
				u, err := strconv.ParseUint(refStr, 10, 64)
				if err != nil {
					return nil, bad(err)
				}
				parents = append(parents, Parent{Ref: RefFromUint64(u), Negated: negStr == "1"})
			}
			st.NewDerived(Op(op), parents...)
		case "set":
			u, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			s, err := argInt(2)
			if err != nil {
				return nil, bad(err)
			}
			if err := st.SetState(RefFromUint64(u), State(s)); err != nil {
				return nil, bad(err)
			}
		case "invalidate":
			u, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			if err := st.Invalidate(RefFromUint64(u)); err != nil {
				return nil, bad(err)
			}
		case "permanent":
			u, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			if err := st.MakePermanent(RefFromUint64(u)); err != nil {
				return nil, bad(err)
			}
		case "directuse", "notify", "autorevoke":
			u, err := argInt(1)
			if err != nil {
				return nil, bad(err)
			}
			ref := RefFromUint64(u)
			var merr error
			switch fields[0] {
			case "directuse":
				merr = st.MarkDirectUse(ref)
			case "notify":
				merr = st.MarkNotify(ref)
			case "autorevoke":
				merr = st.MarkAutoRevoke(ref)
			}
			if merr != nil {
				return nil, bad(merr)
			}
		case "sweep":
			st.Sweep()
		default:
			return nil, bad(fmt.Errorf("unknown op"))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return st, nil
}
