package credrec

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestFactLifecycle(t *testing.T) {
	st := NewStore()
	r := st.NewFact(True)
	if !st.Valid(r) {
		t.Fatal("fresh true fact not valid")
	}
	if err := st.SetState(r, False); err != nil {
		t.Fatal(err)
	}
	if st.Valid(r) {
		t.Fatal("false fact reported valid")
	}
	s, err := st.Lookup(r)
	if err != nil || s != False {
		t.Fatalf("Lookup = %v, %v", s, err)
	}
}

func TestRefUint64RoundTrip(t *testing.T) {
	r := Ref{Index: 0xDEADBEEF, Magic: 0x12345678}
	if got := RefFromUint64(r.Uint64()); got != r {
		t.Fatalf("round trip %v -> %v", r, got)
	}
}

func TestDanglingReference(t *testing.T) {
	st := NewStore()
	r := st.NewFact(True)
	bogus := Ref{Index: r.Index, Magic: r.Magic + 1}
	if _, err := st.Lookup(bogus); !errors.Is(err, ErrDangling) {
		t.Fatalf("stale magic: %v", err)
	}
	if _, err := st.Lookup(Ref{Index: 999, Magic: 1}); !errors.Is(err, ErrDangling) {
		t.Fatalf("out of range: %v", err)
	}
	if st.Valid(bogus) {
		t.Fatal("dangling reference valid")
	}
}

func TestAndGraphPropagation(t *testing.T) {
	// Figure 4.6: a single AND record confirms three membership rules.
	st := NewStore()
	login := st.NewFact(True)
	deleg := st.NewFact(True)
	group := st.NewFact(True)
	member := st.NewDerived(OpAnd, Of(login), Of(deleg), Of(group))
	if !st.Valid(member) {
		t.Fatal("conjunction of true facts not valid")
	}
	// Removing the user from the group revokes the membership (§3.2.3).
	if err := st.SetState(group, False); err != nil {
		t.Fatal(err)
	}
	if st.Valid(member) {
		t.Fatal("membership survived group removal")
	}
	// Re-adding restores it (non-permanent condition).
	if err := st.SetState(group, True); err != nil {
		t.Fatal(err)
	}
	if !st.Valid(member) {
		t.Fatal("membership did not recover")
	}
}

func TestOrNorNand(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	b := st.NewFact(False)

	or := st.NewDerived(OpOr, Of(a), Of(b))
	nor := st.NewDerived(OpNor, Of(a), Of(b))
	nand := st.NewDerived(OpNand, Of(a), Of(b))
	and := st.NewDerived(OpAnd, Of(a), Of(b))

	check := func(ref Ref, want State) {
		t.Helper()
		got, err := st.Lookup(ref)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("state = %v, want %v", got, want)
		}
	}
	check(or, True)
	check(nor, False)
	check(nand, True)
	check(and, False)

	if err := st.SetState(b, True); err != nil {
		t.Fatal(err)
	}
	check(or, True)
	check(nor, False)
	check(nand, False)
	check(and, True)
}

func TestNegatedEdge(t *testing.T) {
	// §3.3.2: membership requires NOT Revoked(...).
	st := NewStore()
	person := st.NewFact(True)
	revoked := st.NewFact(False)
	member := st.NewDerived(OpAnd, Of(person), Not(revoked))
	if !st.Valid(member) {
		t.Fatal("member invalid before revocation")
	}
	if err := st.SetState(revoked, True); err != nil {
		t.Fatal(err)
	}
	if st.Valid(member) {
		t.Fatal("member valid after revocation")
	}
}

func TestUnknownPropagation(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	b := st.NewFact(True)
	and := st.NewDerived(OpAnd, Of(a), Of(b))
	if err := st.SetState(a, Unknown); err != nil {
		t.Fatal(err)
	}
	s, _ := st.Lookup(and)
	if s != Unknown {
		t.Fatalf("AND of unknown = %v, want unknown", s)
	}
	if st.Valid(and) {
		t.Fatal("unknown record treated as valid; servers must act as if revoked")
	}
	// OR with a true parent stays true despite an unknown one.
	c := st.NewFact(Unknown)
	or := st.NewDerived(OpOr, Of(b), Of(c))
	if !st.Valid(or) {
		t.Fatal("OR with a true parent should remain true")
	}
}

func TestDeepCascade(t *testing.T) {
	// Recursive delegation (figure 4.5): revoking the root invalidates
	// the whole subtree in one propagation.
	st := NewStore()
	root := st.NewFact(True)
	cur := root
	var chain []Ref
	for i := 0; i < 100; i++ {
		cur = st.NewDerived(OpAnd, Of(cur))
		chain = append(chain, cur)
	}
	if !st.Valid(chain[99]) {
		t.Fatal("leaf of delegation chain invalid")
	}
	if err := st.Invalidate(root); err != nil {
		t.Fatal(err)
	}
	for i, r := range chain {
		if st.Valid(r) {
			t.Fatalf("chain[%d] still valid after root revocation", i)
		}
	}
}

func TestSelectiveRevocation(t *testing.T) {
	// Figure 4.5: client 1 revokes client 2's capability; a sibling
	// delegation from the same root is unaffected.
	st := NewStore()
	root := st.NewFact(True)
	d2 := st.NewDerived(OpAnd, Of(root)) // delegation to client 2
	d3 := st.NewDerived(OpAnd, Of(d2))   // client 2 delegates to client 3
	sib := st.NewDerived(OpAnd, Of(root))
	if err := st.Invalidate(d2); err != nil {
		t.Fatal(err)
	}
	if st.Valid(d2) || st.Valid(d3) {
		t.Fatal("revoked subtree still valid")
	}
	if !st.Valid(sib) {
		t.Fatal("sibling delegation caught in selective revocation")
	}
	if !st.Valid(root) {
		t.Fatal("root invalidated by child revocation")
	}
}

func TestInvalidateIsPermanent(t *testing.T) {
	st := NewStore()
	f := st.NewFact(True)
	if err := st.Invalidate(f); err != nil {
		t.Fatal(err)
	}
	if err := st.SetState(f, True); err == nil {
		t.Fatal("permanent record allowed state change")
	}
}

func TestSetStateOnDerivedFails(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	d := st.NewDerived(OpAnd, Of(a))
	if err := st.SetState(d, False); err == nil {
		t.Fatal("derived record accepted direct SetState")
	}
}

func TestPermanencePropagates(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	b := st.NewFact(True)
	and := st.NewDerived(OpAnd, Of(a), Of(b))
	if err := st.Invalidate(a); err != nil {
		t.Fatal(err)
	}
	// AND with a permanently false parent is permanently false: a later
	// change of b must not resurrect it.
	if err := st.SetState(b, False); err != nil {
		t.Fatal(err)
	}
	if err := st.SetState(b, True); err != nil {
		t.Fatal(err)
	}
	if st.Valid(and) {
		t.Fatal("permanently false AND resurrected")
	}
	s, err := st.Lookup(and)
	if err == nil && s != False {
		t.Fatalf("state = %v", s)
	}
}

func TestDerivedFromDanglingIsPermanentlyFalse(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	bogus := Ref{Index: a.Index, Magic: a.Magic + 7}
	d := st.NewDerived(OpAnd, Of(a), Of(bogus))
	if st.Valid(d) {
		t.Fatal("record derived from dangling parent valid")
	}
}

func TestNotifyHook(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	d := st.NewDerived(OpAnd, Of(a))
	if err := st.MarkNotify(d); err != nil {
		t.Fatal(err)
	}
	var got []State
	st.OnChange(func(ref Ref, s State, perm bool) {
		if ref == d {
			got = append(got, s)
		}
	})
	if err := st.SetState(a, False); err != nil {
		t.Fatal(err)
	}
	if err := st.SetState(a, True); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != False || got[1] != True {
		t.Fatalf("notifications = %v", got)
	}
}

func TestNotifyNotFiredForUnflagged(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	d := st.NewDerived(OpAnd, Of(a))
	fired := false
	st.OnChange(func(ref Ref, s State, perm bool) { fired = true })
	if err := st.SetState(a, False); err != nil {
		t.Fatal(err)
	}
	_ = d
	if fired {
		t.Fatal("change notification fired for unflagged record")
	}
}

func TestExternalRecords(t *testing.T) {
	st := NewStore()
	e1 := st.NewExternal("login", True)
	e2 := st.NewExternal("login", True)
	local := st.NewFact(True)
	d := st.NewDerived(OpAnd, Of(e1), Of(e2), Of(local))
	if !st.Valid(d) {
		t.Fatal("derived over externals invalid")
	}
	if st.External(e1) != "login" || st.External(local) != "" {
		t.Fatal("External source wrong")
	}
	// Missed heartbeat: all records from that source become unknown.
	if n := st.MarkSourceUnknown("login"); n != 2 {
		t.Fatalf("marked %d records unknown, want 2", n)
	}
	if st.Valid(d) {
		t.Fatal("derived record valid while parents unknown")
	}
	refs := st.ExternalRefs("login")
	if len(refs) != 2 {
		t.Fatalf("ExternalRefs = %v", refs)
	}
	// Reconnection: states re-read and restored.
	for _, r := range refs {
		if err := st.SetState(r, True); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Valid(d) {
		t.Fatal("derived record did not recover after reconnection")
	}
}

func TestSweepDeletesPermanentlyFalse(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	d := st.NewDerived(OpAnd, Of(a))
	if err := st.MarkDirectUse(d); err != nil {
		t.Fatal(err)
	}
	if err := st.Invalidate(a); err != nil {
		t.Fatal(err)
	}
	deleted := st.Sweep()
	if deleted == 0 {
		t.Fatal("sweep deleted nothing")
	}
	// The deleted records' references now dangle: certificates embedding
	// them validate as revoked.
	if st.Valid(d) {
		t.Fatal("swept record still valid")
	}
	if _, err := st.Lookup(d); !errors.Is(err, ErrDangling) {
		t.Fatalf("Lookup after sweep = %v", err)
	}
}

func TestSweepKeepsInterestingRecords(t *testing.T) {
	st := NewStore()
	used := st.NewFact(True)
	if err := st.MarkDirectUse(used); err != nil {
		t.Fatal(err)
	}
	parent := st.NewFact(True)
	child := st.NewDerived(OpAnd, Of(parent))
	if err := st.MarkDirectUse(child); err != nil {
		t.Fatal(err)
	}
	st.Sweep()
	if !st.Valid(used) || !st.Valid(child) || !st.Valid(parent) {
		t.Fatal("sweep deleted live, interesting records")
	}
}

func TestSlotReuseBumpsMagic(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	if err := st.Invalidate(a); err != nil {
		t.Fatal(err)
	}
	st.Sweep()
	b := st.NewFact(True)
	if b.Index != a.Index {
		t.Skip("allocator did not reuse slot") // not required, but expected
	}
	if b.Magic == a.Magic {
		t.Fatal("reused slot kept old magic; stale refs would resolve")
	}
	if _, err := st.Lookup(a); !errors.Is(err, ErrDangling) {
		t.Fatal("stale ref resolved after reuse")
	}
	if !st.Valid(b) {
		t.Fatal("new record in reused slot invalid")
	}
}

func TestFlags(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	if st.AutoRevoke(a) {
		t.Fatal("fresh record has auto-revoke")
	}
	if err := st.MarkAutoRevoke(a); err != nil {
		t.Fatal(err)
	}
	if !st.AutoRevoke(a) {
		t.Fatal("auto-revoke flag not set")
	}
	bogus := Ref{Index: 99, Magic: 1}
	if err := st.MarkDirectUse(bogus); !errors.Is(err, ErrDangling) {
		t.Fatal("flag set on dangling ref")
	}
}

func TestMakePermanentFreezesTrue(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	if err := st.MakePermanent(a); err != nil {
		t.Fatal(err)
	}
	if err := st.SetState(a, False); err == nil {
		t.Fatal("permanent-true record changed")
	}
	if !st.Valid(a) {
		t.Fatal("permanent-true record invalid")
	}
}

func TestStats(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	if err := st.Invalidate(a); err != nil {
		t.Fatal(err)
	}
	st.Sweep()
	created, deleted := st.Stats()
	if created != 1 || deleted != 1 {
		t.Fatalf("stats = %d created, %d deleted", created, deleted)
	}
	if st.Live() != 0 {
		t.Fatalf("Live = %d", st.Live())
	}
}

// Property: for random two-input graphs, the derived state always equals
// the boolean op applied to parent states (three-valued logic).
func TestQuickDerivedMatchesTruthTable(t *testing.T) {
	states := []State{False, True, Unknown}
	ops := []Op{OpAnd, OpOr, OpNand, OpNor}
	f := func(ai, bi, oi uint8, negA, negB bool) bool {
		sa := states[int(ai)%3]
		sb := states[int(bi)%3]
		op := ops[int(oi)%4]
		st := NewStore()
		a := st.NewFact(sa)
		b := st.NewFact(sb)
		d := st.NewDerived(op, Parent{Ref: a, Negated: negA}, Parent{Ref: b, Negated: negB})
		got, err := st.Lookup(d)
		if err != nil {
			return false
		}
		return got == truth(op, effective(sa, negA), effective(sb, negB))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// truth is an independent three-valued evaluation used as the oracle.
func truth(op Op, a, b State) State {
	and := func(x, y State) State {
		if x == False || y == False {
			return False
		}
		if x == Unknown || y == Unknown {
			return Unknown
		}
		return True
	}
	or := func(x, y State) State {
		if x == True || y == True {
			return True
		}
		if x == Unknown || y == Unknown {
			return Unknown
		}
		return False
	}
	neg := func(x State) State {
		switch x {
		case True:
			return False
		case False:
			return True
		default:
			return Unknown
		}
	}
	switch op {
	case OpAnd:
		return and(a, b)
	case OpOr:
		return or(a, b)
	case OpNand:
		return neg(and(a, b))
	case OpNor:
		return neg(or(a, b))
	}
	return Unknown
}

// Property: after an arbitrary sequence of SetState operations on the
// leaves, the derived record equals the oracle applied to current leaf
// states (propagation via counters never drifts).
func TestQuickPropagationConsistency(t *testing.T) {
	f := func(flips []bool) bool {
		st := NewStore()
		a := st.NewFact(True)
		b := st.NewFact(True)
		d := st.NewDerived(OpAnd, Of(a), Not(b))
		sa, sb := True, True
		for i, fl := range flips {
			var target *State
			var ref Ref
			if i%2 == 0 {
				target, ref = &sa, a
			} else {
				target, ref = &sb, b
			}
			ns := True
			if fl {
				ns = False
			}
			if err := st.SetState(ref, ns); err != nil {
				return false
			}
			*target = ns
			got, err := st.Lookup(d)
			if err != nil {
				return false
			}
			if got != truth(OpAnd, sa, effective(sb, true)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateAndOpStrings(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Fatal("State.String wrong")
	}
	if OpAnd.String() != "and" || OpNor.String() != "nor" {
		t.Fatal("Op.String wrong")
	}
	if State(0).String() == "" || Op(0).String() == "" {
		t.Fatal("zero values render empty")
	}
	if (Ref{Index: 1, Magic: 2}).String() != "crr:1.2" {
		t.Fatal("Ref.String wrong")
	}
}
