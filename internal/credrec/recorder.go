package credrec

// Recorder is the full credential-record store surface — allocation,
// state transitions, flags, GC, bulk source transitions, and the read
// paths. Both the plain in-memory *Store and the journaling
// *LoggedStore satisfy it; the oasis service engine and the group
// manager operate through it so a deployment chooses persistence by
// handing a recovered LoggedStore to oasis.Options.Store, with no
// change anywhere above.
type Recorder interface {
	// Allocation (§4.5–4.7).
	NewFact(s State) Ref
	NewExternal(source string, s State) Ref
	NewDerived(op Op, parents ...Parent) Ref

	// State transitions and revocation (§4.6, §4.8).
	SetState(ref Ref, s State) error
	Invalidate(ref Ref) error
	MakePermanent(ref Ref) error

	// Record flags (figure 4.7).
	MarkDirectUse(ref Ref) error
	MarkNotify(ref Ref) error
	MarkAutoRevoke(ref Ref) error

	// Bulk transitions for failure suspicion (§4.10, §6.8.4).
	MarkSourceUnknown(source string) int
	MarkSourceFailsafe(source string) int

	// Garbage collection (§4.8).
	Sweep() int

	// Read paths.
	Lookup(ref Ref) (State, error)
	Valid(ref Ref) bool
	Resolve(ref Ref) (State, bool, error)
	AutoRevoke(ref Ref) bool
	External(ref Ref) string
	ExternalRefs(source string) []Ref

	// Observation and introspection.
	OnChange(f ChangeFunc)
	Image() []byte
	Live() int
	Stats() (created, deleted uint64)
}

// Interface conformance: the in-memory store and its journaling
// wrapper are interchangeable behind Recorder.
var (
	_ Recorder = (*Store)(nil)
	_ Recorder = (*LoggedStore)(nil)
)
