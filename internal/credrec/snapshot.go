package credrec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"oasis/internal/bus"
)

// Store snapshots (docs/STORAGE.md "Snapshot format"). A snapshot is a
// complete, byte-deterministic image of a store's internal state — not
// just the record values but everything the allocator's determinism
// depends on: slot magics (including freed slots, so references are
// never reissued), per-shard free lists in exact reuse order, and the
// round-robin allocation counter. ReadSnapshot therefore yields a
// store whose *future* behaviour is identical to the original's: the
// next NewFact mints the same Ref, the next Sweep frees the same
// slots. That is what lets the journal be truncated at a snapshot —
// replaying the tail into the snapshot reproduces the live store
// exactly, O(live records + tail) instead of O(history).
//
// Layout: an 8-byte magic, a payload of bus-codec varints/strings, and
// a trailing CRC-32C of the payload. The whole snapshot is staged in
// memory on both paths, which keeps the checksum trivial and is fine
// at the record counts one daemon holds.

// snapMagic identifies snapshot files; the trailing byte is a format
// version.
var snapMagic = [8]byte{'O', 'A', 'S', 'N', 'A', 'P', '0', '1'}

// ErrSnapshotCorrupt reports an unreadable snapshot image.
var ErrSnapshotCorrupt = fmt.Errorf("credrec: snapshot corrupt")

// maxSnapshotSlots bounds per-shard slot counts while decoding an
// untrusted snapshot (2^28 slots ≈ 4 GiB of records; far beyond one
// daemon).
const maxSnapshotSlots = 1 << 28

// WriteSnapshot writes a complete image of the store to w. Callers
// must ensure no mutation is in flight — the LoggedStore.Snapshot
// barrier, or exclusive ownership of a plain Store.
func (st *Store) WriteSnapshot(w io.Writer) error {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()

	var payload bytes.Buffer
	e := bus.NewWireEnc(&payload)
	e.PutUvarint(st.nalloc)
	e.PutUvarint(uint64(st.totalFree))
	e.PutUvarint(st.created.Load())
	e.PutUvarint(st.deleted.Load())
	for si := range st.shards {
		sh := &st.shards[si]
		e.PutUvarint(uint64(len(sh.slots)))
		for p := range sh.slots {
			sl := &sh.slots[p]
			e.PutUvarint(uint64(sl.magic))
			e.PutBool(sl.rec != nil)
			if sl.rec == nil {
				continue
			}
			r := sl.rec
			var flags byte
			if r.permanent {
				flags |= 1
			}
			if r.notify {
				flags |= 2
			}
			if r.directUse {
				flags |= 4
			}
			if r.autoRev {
				flags |= 8
			}
			e.PutByte(flags)
			e.PutUvarint(uint64(r.op))
			e.PutUvarint(uint64(r.state))
			e.PutString(r.external)
			e.PutUvarint(uint64(r.nParents))
			e.PutUvarint(uint64(r.effTrue))
			e.PutUvarint(uint64(r.effFalse))
			e.PutUvarint(uint64(r.effUnk))
			e.PutUvarint(uint64(r.permTrue))
			e.PutUvarint(uint64(r.permFalse))
			e.PutUvarint(uint64(len(r.children)))
			for _, cl := range r.children {
				e.PutUvarint(cl.ref.Uint64())
				e.PutBool(cl.negated)
			}
		}
		e.PutUvarint(uint64(len(sh.free)))
		for _, idx := range sh.free {
			e.PutUvarint(uint64(idx))
		}
	}

	if _, err := w.Write(snapMagic[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload.Bytes(), crcJournal))
	_, err := w.Write(sum[:])
	return err
}

// ReadSnapshot rebuilds a store from a snapshot image. The returned
// store is ready for tail replay (ReplayInto) and further mutation.
func ReadSnapshot(r io.Reader) (*Store, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrSnapshotCorrupt, len(raw))
	}
	if !bytes.Equal(raw[:len(snapMagic)], snapMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, raw[:len(snapMagic)])
	}
	payload := raw[len(snapMagic) : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(payload, crcJournal) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}

	pr := bytes.NewReader(payload)
	d := bus.NewWireDec(pr)
	st := NewStore()
	bad := func(what string, err error) error {
		return fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, what, err)
	}
	if st.nalloc, err = d.Uvarint(); err != nil {
		return nil, bad("nalloc", err)
	}
	tf, err := d.Uvarint()
	if err != nil {
		return nil, bad("totalFree", err)
	}
	st.totalFree = int(tf)
	created, err := d.Uvarint()
	if err != nil {
		return nil, bad("created", err)
	}
	deleted, err := d.Uvarint()
	if err != nil {
		return nil, bad("deleted", err)
	}
	st.created.Store(created)
	st.deleted.Store(deleted)

	for si := range st.shards {
		sh := &st.shards[si]
		nSlots, err := d.Uvarint()
		if err != nil {
			return nil, bad("slot count", err)
		}
		if nSlots > maxSnapshotSlots {
			return nil, fmt.Errorf("%w: shard %d claims %d slots", ErrSnapshotCorrupt, si, nSlots)
		}
		sh.slots = make([]slot, nSlots)
		for p := range sh.slots {
			magic, err := d.Uvarint()
			if err != nil {
				return nil, bad("slot magic", err)
			}
			sh.slots[p].magic = uint32(magic)
			present, err := d.Bool()
			if err != nil {
				return nil, bad("slot presence", err)
			}
			if !present {
				continue
			}
			r := &record{ref: Ref{Index: uint32(p*numShards + si), Magic: uint32(magic)}}
			flags, err := d.Byte()
			if err != nil {
				return nil, bad("record flags", err)
			}
			r.permanent = flags&1 != 0
			r.notify = flags&2 != 0
			r.directUse = flags&4 != 0
			r.autoRev = flags&8 != 0
			op, err := d.Uvarint()
			if err != nil {
				return nil, bad("record op", err)
			}
			r.op = Op(op)
			state, err := d.Uvarint()
			if err != nil {
				return nil, bad("record state", err)
			}
			if s := State(state); s != True && s != False && s != Unknown {
				return nil, fmt.Errorf("%w: record state %d", ErrSnapshotCorrupt, state)
			}
			r.state = State(state)
			if r.external, err = d.String(); err != nil {
				return nil, bad("record external", err)
			}
			counters := []*int{&r.nParents, &r.effTrue, &r.effFalse, &r.effUnk, &r.permTrue, &r.permFalse}
			for _, c := range counters {
				u, err := d.Uvarint()
				if err != nil {
					return nil, bad("record counter", err)
				}
				*c = int(u)
			}
			nChildren, err := d.Uvarint()
			if err != nil {
				return nil, bad("child count", err)
			}
			if nChildren > maxSnapshotSlots {
				return nil, fmt.Errorf("%w: record claims %d children", ErrSnapshotCorrupt, nChildren)
			}
			if nChildren > 0 {
				r.children = make([]childLink, nChildren)
				for i := range r.children {
					u, err := d.Uvarint()
					if err != nil {
						return nil, bad("child ref", err)
					}
					r.children[i].ref = RefFromUint64(u)
					if r.children[i].negated, err = d.Bool(); err != nil {
						return nil, bad("child negation", err)
					}
				}
			}
			r.publish()
			sh.slots[p].rec = r
		}
		nFree, err := d.Uvarint()
		if err != nil {
			return nil, bad("free count", err)
		}
		if nFree > nSlots {
			return nil, fmt.Errorf("%w: shard %d frees %d of %d slots", ErrSnapshotCorrupt, si, nFree, nSlots)
		}
		if nFree > 0 {
			sh.free = make([]uint32, nFree)
			for i := range sh.free {
				u, err := d.Uvarint()
				if err != nil {
					return nil, bad("free index", err)
				}
				sh.free[i] = uint32(u)
			}
		}
	}
	if pr.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, pr.Len())
	}
	return st, nil
}
