package credrec

import "testing"

func TestRingCanonicalisesMembers(t *testing.T) {
	a, err := NewRing([]string{"c", "a", "b", "a"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"b", "c", "a"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(a.Members()), 3; got != want {
		t.Fatalf("members = %d, want %d", got, want)
	}
	for k := uint64(0); k < 10000; k++ {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: permuted rings disagree: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty member name accepted")
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 40000
	counts := make(map[string]int)
	for k := uint64(0); k < keys; k++ {
		counts[r.Owner(k)]++
	}
	for m, c := range counts {
		frac := float64(c) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %q owns %.1f%% of the key space; want roughly 25%%", m, frac*100)
		}
	}
}

// TestRingJoinStability asserts the consistent-hashing property: adding
// one member to a 4-member ring moves only a minority of the key space,
// and every key that does not move to the newcomer keeps its old owner.
func TestRingJoinStability(t *testing.T) {
	old, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing([]string{"s0", "s1", "s2", "s3", "s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 40000
	moved := 0
	for k := uint64(0); k < keys; k++ {
		before, after := old.Owner(k), grown.Owner(k)
		if before == after {
			continue
		}
		if after != "s4" {
			t.Fatalf("key %d moved %q -> %q: only the joining member may gain keys", k, before, after)
		}
		moved++
	}
	if frac := float64(moved) / keys; frac > 0.40 {
		t.Fatalf("join moved %.1f%% of the key space; consistent hashing should move ~20%%", frac*100)
	}
}
