package credrec

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over a set of shard names. Each member
// owns `replicas` virtual nodes placed by hashing "name#i"; a key is
// owned by the member whose virtual node is the first at or clockwise
// of the key's hash. Placement is a pure function of (members,
// replicas, key), so every participant that builds a ring from the same
// member list routes identically — there is no coordination protocol.
//
// The consistent-hashing property is what makes the ring the right
// join/rebalance story for the sharded store: adding one member to an
// n-member ring moves only ~1/(n+1) of the key space, and every key
// that does not move keeps its owner (ring_test.go asserts both). The
// sharded store additionally seals the owning shard into each record
// reference at allocation time (see sharded.go), so even the keys that
// do move on a join only change where *future* records are placed —
// resolution of existing references never consults the ring.
type Ring struct {
	replicas int
	members  []string // sorted, deduplicated
	vnodes   []vnode  // sorted by hash
}

type vnode struct {
	hash  uint64
	owner int // index into members
}

// DefaultRingReplicas is the virtual-node count used when NewRing is
// given replicas <= 0; 64 per member keeps the maximum/mean ownership
// ratio under ~1.3 for small member counts.
const DefaultRingReplicas = 64

// NewRing builds a ring over the given members. Members are sorted and
// deduplicated, so any permutation of the same set yields an identical
// ring. An empty member list is rejected.
func NewRing(members []string, replicas int) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	seen := make(map[string]bool, len(members))
	var sorted []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("credrec: empty ring member name")
		}
		if !seen[m] {
			seen[m] = true
			sorted = append(sorted, m)
		}
	}
	if len(sorted) == 0 {
		return nil, fmt.Errorf("credrec: ring needs at least one member")
	}
	sort.Strings(sorted)
	r := &Ring{replicas: replicas, members: sorted}
	r.vnodes = make([]vnode, 0, len(sorted)*replicas)
	for i, m := range sorted {
		for v := 0; v < replicas; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", m, v)
			// FNV of short, similar strings clusters; the splitmix
			// finalizer spreads the vnodes over the whole space.
			r.vnodes = append(r.vnodes, vnode{hash: mix64(h.Sum64()), owner: i})
		}
	}
	// Ties (hash collisions between vnodes) break by member order, then
	// replica order via stable sort input order — deterministic either way.
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		return r.vnodes[i].owner < r.vnodes[j].owner
	})
	return r, nil
}

// Members returns the sorted member list (not a copy the caller may
// mutate — treat as read-only).
func (r *Ring) Members() []string { return r.members }

// mix64 is the splitmix64 finalizer: allocation keys are small sequential
// integers, and binary-searching them raw would put every key in the
// same arc between two vnodes.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// OwnerIndex returns the index (into Members) of the member owning key.
func (r *Ring) OwnerIndex(key uint64) int {
	h := mix64(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap: the first vnode clockwise of the top of the space
	}
	return r.vnodes[i].owner
}

// Owner returns the name of the member owning key.
func (r *Ring) Owner(key uint64) string { return r.members[r.OwnerIndex(key)] }
