package credrec

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func newTestSharded(t *testing.T, n int) *ShardedStore {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	ss, err := NewShardedStore(names, 16)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestShardedRefPacking(t *testing.T) {
	ss := newTestSharded(t, 4)
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		ref := ss.NewFact(True)
		id := ss.ShardOf(ref)
		if id < 0 || id >= 4 {
			t.Fatalf("ref %v routed to shard %d", ref, id)
		}
		seen[id] = true
		if st, err := ss.Lookup(ref); err != nil || st != True {
			t.Fatalf("Lookup(%v) = %v, %v", ref, st, err)
		}
	}
	if len(seen) < 3 {
		t.Fatalf("256 facts landed on only %d of 4 shards", len(seen))
	}
}

func TestShardedDanglingShardID(t *testing.T) {
	ss := newTestSharded(t, 2)
	bad := Ref{Index: 63 << shardIDShift, Magic: 1} // shard 63 is off the ring
	if _, err := ss.Lookup(bad); err == nil {
		t.Fatal("off-ring shard id resolved")
	}
	if st, perm, _ := ss.Resolve(bad); st != False || !perm {
		t.Fatalf("Resolve off-ring = %v, %v; want permanently false", st, perm)
	}
	if ss.Valid(bad) {
		t.Fatal("off-ring ref validated")
	}
	if err := ss.SetState(bad, True); err == nil {
		t.Fatal("SetState on off-ring ref succeeded")
	}
}

func TestShardedLocalCascade(t *testing.T) {
	ss := newTestSharded(t, 4)
	f := ss.NewFact(True)
	d1 := ss.NewDerived(OpAnd, Of(f))
	d2 := ss.NewDerived(OpAnd, Of(d1))
	// First-parent placement: the chain stays on the fact's shard.
	if ss.ShardOf(d1) != ss.ShardOf(f) || ss.ShardOf(d2) != ss.ShardOf(f) {
		t.Fatalf("chain scattered: shards %d, %d, %d", ss.ShardOf(f), ss.ShardOf(d1), ss.ShardOf(d2))
	}
	if !ss.Valid(d2) {
		t.Fatal("derived chain not true")
	}
	if err := ss.SetState(f, False); err != nil {
		t.Fatal(err)
	}
	if ss.Valid(d1) || ss.Valid(d2) {
		t.Fatal("cascade did not reach the chain")
	}
}

// crossShardPair returns a fact and a second fact guaranteed to live on
// a different shard, for cross-shard edge tests.
func crossShardPair(t *testing.T, ss *ShardedStore) (a, b Ref) {
	t.Helper()
	a = ss.NewFact(True)
	for i := 0; i < 1024; i++ {
		b = ss.NewFact(True)
		if ss.ShardOf(b) != ss.ShardOf(a) {
			return a, b
		}
	}
	t.Fatal("could not allocate facts on two distinct shards")
	return
}

func TestShardedCrossShardCascade(t *testing.T) {
	ss := newTestSharded(t, 4)
	a, b := crossShardPair(t, ss)
	// Derived lands on a's shard; b is bridged.
	d := ss.NewDerived(OpAnd, Of(a), Of(b))
	if ss.ShardOf(d) != ss.ShardOf(a) {
		t.Fatalf("derived on shard %d, want first parent's %d", ss.ShardOf(d), ss.ShardOf(a))
	}
	if !ss.Valid(d) {
		t.Fatal("cross-shard AND not true")
	}
	// A change on b's shard must cross the bridge.
	if err := ss.SetState(b, False); err != nil {
		t.Fatal(err)
	}
	if ss.Valid(d) {
		t.Fatal("remote parent change did not cascade across shards")
	}
	if err := ss.SetState(b, True); err != nil {
		t.Fatal(err)
	}
	if !ss.Valid(d) {
		t.Fatal("bridge did not restore")
	}
	// Permanent revocation crosses too, and sticks.
	if err := ss.Invalidate(b); err != nil {
		t.Fatal(err)
	}
	if st, perm, _ := ss.Resolve(d); st != False || !perm {
		t.Fatalf("derived after remote Invalidate = %v perm=%v; want permanent false", st, perm)
	}
}

func TestShardedCrossShardChain(t *testing.T) {
	// a --bridge--> d1 (b's shard) --bridge--> d2 (c's shard): a cascade
	// must chain through two bridges.
	ss := newTestSharded(t, 4)
	a, b := crossShardPair(t, ss)
	d1 := ss.NewDerived(OpAnd, Of(b), Of(a)) // on b's shard, bridges a
	var c Ref
	for i := 0; i < 1024; i++ {
		c = ss.NewFact(True)
		if ss.ShardOf(c) != ss.ShardOf(d1) {
			break
		}
	}
	if ss.ShardOf(c) == ss.ShardOf(d1) {
		t.Fatal("no third shard reached")
	}
	d2 := ss.NewDerived(OpAnd, Of(c), Of(d1)) // on c's shard, bridges d1
	if !ss.Valid(d2) {
		t.Fatal("chained cross-shard AND not true")
	}
	if err := ss.SetState(a, False); err != nil {
		t.Fatal(err)
	}
	if ss.Valid(d1) || ss.Valid(d2) {
		t.Fatal("cascade did not chain across two bridges")
	}
}

func TestShardedBridgeSharing(t *testing.T) {
	ss := newTestSharded(t, 4)
	a, b := crossShardPair(t, ss)
	before := ss.Live()
	d1 := ss.NewDerived(OpAnd, Of(a), Of(b))
	mid := ss.Live()
	d2 := ss.NewDerived(OpOr, Of(a), Of(b))
	after := ss.Live()
	// d1 minted one bridge for b; d2 reuses it: one new record only.
	if mid-before != 2 { // derived + bridge
		t.Fatalf("first derived added %d records, want 2 (derived + bridge)", mid-before)
	}
	if after-mid != 1 {
		t.Fatalf("second derived added %d records, want 1 (bridge shared)", after-mid)
	}
	if err := ss.SetState(b, False); err != nil {
		t.Fatal(err)
	}
	if ss.Valid(d1) {
		t.Fatal("AND survived remote false")
	}
	if !ss.Valid(d2) {
		t.Fatal("OR lost its true local parent")
	}
}

func TestShardedDanglingParent(t *testing.T) {
	ss := newTestSharded(t, 2)
	a := ss.NewFact(True)
	gone := Ref{Index: a.Index, Magic: a.Magic + 77}
	d := ss.NewDerived(OpAnd, Of(a), Of(gone))
	if st, perm, _ := ss.Resolve(d); st != False || !perm {
		t.Fatalf("derived with dangling parent = %v perm=%v; want permanent false", st, perm)
	}
}

func TestShardedOnChangeGlobalRefs(t *testing.T) {
	ss := newTestSharded(t, 4)
	var mu sync.Mutex
	got := make(map[uint64]State)
	ss.OnChange(func(ref Ref, s State, perm bool) {
		mu.Lock()
		got[ref.Uint64()] = s
		mu.Unlock()
	})
	f := ss.NewFact(True)
	if err := ss.MarkNotify(f); err != nil {
		t.Fatal(err)
	}
	if err := ss.SetState(f, False); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[f.Uint64()] != False {
		t.Fatalf("observer saw %v; want change reported under the global ref %v", got, f)
	}
}

func TestShardedSourceTransitions(t *testing.T) {
	ss := newTestSharded(t, 4)
	var refs []Ref
	for i := 0; i < 32; i++ {
		refs = append(refs, ss.NewExternal("Login", True))
	}
	if n := ss.MarkSourceUnknown("Login"); n != 32 {
		t.Fatalf("MarkSourceUnknown touched %d, want 32", n)
	}
	for _, r := range refs {
		if st, _ := ss.Lookup(r); st != Unknown {
			t.Fatalf("external %v = %v after MarkSourceUnknown", r, st)
		}
	}
	if n := ss.MarkSourceFailsafe("Login"); n != 32 {
		t.Fatalf("MarkSourceFailsafe touched %d, want 32", n)
	}
	if got := len(ss.ExternalRefs("Login")); got != 32 {
		t.Fatalf("ExternalRefs = %d, want 32", got)
	}
}

func TestShardedShardSuspicion(t *testing.T) {
	ss := newTestSharded(t, 4)
	a, b := crossShardPair(t, ss)
	d := ss.NewDerived(OpAnd, Of(a), Of(b)) // bridge to b's shard
	if !ss.Valid(d) {
		t.Fatal("setup: derived not true")
	}
	bShard := ss.ShardNames()[ss.ShardOf(b)]
	// b's shard goes suspect: the bridge (hence d) degrades to Unknown.
	if n := ss.MarkShardUnknown(bShard); n == 0 {
		t.Fatal("MarkShardUnknown touched nothing")
	}
	if st, _ := ss.Lookup(d); st != Unknown {
		t.Fatalf("derived = %v with its remote parent's shard suspect; want unknown", st)
	}
	// Then failed: fail-safe False.
	if n := ss.MarkShardFailsafe(bShard); n == 0 {
		t.Fatal("MarkShardFailsafe touched nothing")
	}
	if st, _ := ss.Lookup(d); st != False {
		t.Fatalf("derived = %v with its remote parent's shard failed; want false", st)
	}
	// The shard heals: resync restores the authoritative truth.
	if n := ss.ResyncShard(bShard); n == 0 {
		t.Fatal("ResyncShard refreshed nothing")
	}
	if !ss.Valid(d) {
		t.Fatal("resync did not restore the derived record")
	}
}

func TestShardedResyncAfterMissedRevocation(t *testing.T) {
	// The reason recovery demands a resync: the revocation may have
	// happened during the silence. Simulate by invalidating the parent
	// directly on its shard store (bypassing the bridge fan-out would
	// require a partition; here we resync onto an already-final state).
	ss := newTestSharded(t, 4)
	a, b := crossShardPair(t, ss)
	d := ss.NewDerived(OpAnd, Of(a), Of(b))
	bShard := ss.ShardNames()[ss.ShardOf(b)]
	ss.MarkShardFailsafe(bShard)
	if err := ss.Invalidate(b); err != nil {
		t.Fatal(err)
	}
	ss.ResyncShard(bShard)
	if st, perm, _ := ss.Resolve(d); st != False || !perm {
		t.Fatalf("derived = %v perm=%v after resync of a revoked parent; want permanent false", st, perm)
	}
}

func TestShardedSweepPrunesEdges(t *testing.T) {
	ss := newTestSharded(t, 4)
	a, b := crossShardPair(t, ss)
	d := ss.NewDerived(OpAnd, Of(a), Of(b))
	if n := int(ss.nEdges.Load()); n != 1 {
		t.Fatalf("edges = %d, want 1", n)
	}
	if err := ss.Invalidate(b); err != nil {
		t.Fatal(err)
	}
	// Permanent transitions retire the edge eagerly.
	if n := int(ss.nEdges.Load()); n != 0 {
		t.Fatalf("edges = %d after permanent revocation, want 0", n)
	}
	ss.Sweep()
	if ss.Valid(d) {
		t.Fatal("revoked subgraph still valid after sweep")
	}
}

func TestShardedImageDeterministic(t *testing.T) {
	build := func() []byte {
		ss := newTestSharded(t, 4)
		var facts []Ref
		for i := 0; i < 64; i++ {
			facts = append(facts, ss.NewFact(True))
		}
		for i := 0; i+1 < len(facts); i += 2 {
			ss.NewDerived(OpAnd, Of(facts[i]), Of(facts[i+1]))
		}
		for i := 0; i < len(facts); i += 3 {
			_ = ss.SetState(facts[i], False)
		}
		return ss.Image()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical histories produced different sharded images")
	}
}

func TestShardedSingleShardMatchesMonolith(t *testing.T) {
	// One shard: pure routing overhead, identical semantics.
	ss := newTestSharded(t, 1)
	mono := NewStore()
	sf, mf := ss.NewFact(True), mono.NewFact(True)
	sd, md := ss.NewDerived(OpNand, Of(sf)), mono.NewDerived(OpNand, Of(mf))
	if err := ss.SetState(sf, False); err != nil {
		t.Fatal(err)
	}
	if err := mono.SetState(mf, False); err != nil {
		t.Fatal(err)
	}
	s1, _ := ss.Lookup(sd)
	s2, _ := mono.Lookup(md)
	if s1 != s2 {
		t.Fatalf("single-shard store diverged from monolith: %v vs %v", s1, s2)
	}
}

// TestShardedMatrix runs one semantic workload — cross-fact derived
// records, state flaps, permanent revocation, a sweep — at every shard
// count `make test-shard` gates on, asserting each partitioning yields
// exactly the monolithic store's observable states. The matrix is what
// lets the benchmarks vary shard count freely: semantics are already
// proven invariant under partitioning.
func TestShardedMatrix(t *testing.T) {
	type probe struct {
		st   State
		perm bool
	}
	run := func(r Recorder) []probe {
		facts := make([]Ref, 16)
		for i := range facts {
			facts[i] = r.NewFact(True)
		}
		derived := make([]Ref, 0, len(facts))
		for i := range facts {
			// Pair each fact with its neighbour: with >1 shard many of
			// these dependency edges cross shards.
			derived = append(derived, r.NewDerived(OpAnd, Of(facts[i]), Of(facts[(i+1)%len(facts)])))
		}
		for i := 0; i < len(facts); i += 3 {
			if err := r.SetState(facts[i], False); err != nil {
				panic(err)
			}
		}
		if err := r.SetState(facts[0], True); err != nil {
			panic(err)
		}
		if err := r.Invalidate(facts[5]); err != nil {
			panic(err)
		}
		r.Sweep()
		var out []probe
		for _, d := range derived {
			st, perm, _ := r.Resolve(d)
			out = append(out, probe{st, perm})
		}
		return out
	}
	want := run(NewStore())
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := run(newTestSharded(t, shards))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("derived %d: sharded %+v, monolith %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestShardedConcurrentStorm(t *testing.T) {
	// Parallel revocation storms on disjoint subgraphs must be safe and
	// leave every chain consistent. Run with -race in make race.
	ss := newTestSharded(t, 4)
	const groups = 64
	facts := make([]Ref, groups)
	chains := make([][]Ref, groups)
	for g := range facts {
		facts[g] = ss.NewFact(True)
		prev := facts[g]
		for d := 0; d < 4; d++ {
			prev = ss.NewDerived(OpAnd, Of(prev))
			chains[g] = append(chains[g], prev)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g := (w*200 + i) % groups
				_ = ss.SetState(facts[g], False)
				_ = ss.SetState(facts[g], True)
			}
		}(w)
	}
	wg.Wait()
	for g := range facts {
		want, _ := ss.Lookup(facts[g])
		for _, d := range chains[g] {
			if got, _ := ss.Lookup(d); got != want {
				t.Fatalf("group %d inconsistent after storm: fact %v, derived %v", g, want, got)
			}
		}
	}
}
