package credrec

import (
	"bytes"
	"sync"
	"testing"
)

func TestMarkSourceFailsafe(t *testing.T) {
	st := NewStore()
	extTrue := st.NewExternal("login", True)
	extUnk := st.NewExternal("login", Unknown)
	extFalse := st.NewExternal("login", False)
	extPerm := st.NewExternal("login", True)
	if err := st.MakePermanent(extPerm); err != nil {
		t.Fatal(err)
	}
	other := st.NewExternal("conf", True)
	dep := st.NewDerived(OpAnd, Of(extTrue))

	// True and Unknown records fail safe; already-False, permanent and
	// foreign-source records are untouched.
	if n := st.MarkSourceFailsafe("login"); n != 2 {
		t.Fatalf("failsafed %d records, want 2", n)
	}
	for _, tc := range []struct {
		ref  Ref
		want State
	}{
		{extTrue, False}, {extUnk, False}, {extFalse, False},
		{extPerm, True}, {other, True}, {dep, False},
	} {
		if s, err := st.Lookup(tc.ref); err != nil || s != tc.want {
			t.Errorf("ref %v = %v (%v), want %v", tc.ref, s, err, tc.want)
		}
	}

	// Fail-safe is NOT permanent: a resync can restore the truth.
	if err := st.SetState(extTrue, True); err != nil {
		t.Fatalf("fail-safe state not recoverable: %v", err)
	}
	if !st.Valid(dep) {
		t.Fatal("dependent did not recover with its parent")
	}
}

func TestResolve(t *testing.T) {
	st := NewStore()
	a := st.NewFact(True)
	b := st.NewFact(False)
	if err := st.MakePermanent(b); err != nil {
		t.Fatal(err)
	}
	if s, perm, err := st.Resolve(a); err != nil || s != True || perm {
		t.Fatalf("Resolve(a) = %v %v %v", s, perm, err)
	}
	if s, perm, err := st.Resolve(b); err != nil || s != False || !perm {
		t.Fatalf("Resolve(b) = %v %v %v", s, perm, err)
	}
	// Dangling resolves permanently false with the error.
	if s, perm, err := st.Resolve(Ref{Index: 99, Magic: 99}); err == nil || s != False || !perm {
		t.Fatalf("Resolve(dangling) = %v %v %v", s, perm, err)
	}
}

func TestImageDistinguishesState(t *testing.T) {
	build := func(flip bool) *Store {
		st := NewStore()
		r := st.NewFact(True)
		st.NewDerived(OpAnd, Of(r))
		if flip {
			if err := st.SetState(r, False); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	if !bytes.Equal(build(false).Image(), build(false).Image()) {
		t.Fatal("identical histories produced different images")
	}
	if bytes.Equal(build(false).Image(), build(true).Image()) {
		t.Fatal("diverged histories produced identical images")
	}
}

// The satellite regression: a save/load roundtrip taken while a
// revocation cascade runs on other goroutines. The journal lock makes
// apply order equal journal order, so any snapshot is consistent and
// the final replay matches the post-cascade store byte for byte.
func TestConcurrentCascadeRoundtrip(t *testing.T) {
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	defer ls.Close()

	const roots = 64
	const workers = 4
	var rootRefs []Ref
	for i := 0; i < roots; i++ {
		r := ls.NewFact(True)
		rootRefs = append(rootRefs, r)
		c1 := ls.NewDerived(OpAnd, Of(r))
		c2 := ls.NewDerived(OpAnd, Of(c1), Of(r))
		if err := ls.MarkDirectUse(c2); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each worker owns a disjoint slice of roots, mixing
			// permanent revocation with transient flips.
			for i := g; i < roots; i += workers {
				if i%2 == 0 {
					_ = ls.Invalidate(rootRefs[i])
				} else {
					_ = ls.SetState(rootRefs[i], False)
					_ = ls.SetState(rootRefs[i], True)
				}
			}
		}(g)
	}

	// Save/load while the cascades are in flight: every snapshot must
	// replay cleanly (no torn journal).
	for k := 0; k < 16; k++ {
		var copied []byte
		ls.Snapshot(func() { copied = append([]byte(nil), journal.Bytes()...) })
		if _, err := Replay(bytes.NewReader(copied)); err != nil {
			t.Fatalf("mid-cascade snapshot replay failed: %v", err)
		}
	}
	wg.Wait()
	if err := ls.Sync(); err != nil {
		t.Fatal(err)
	}

	recovered, err := Replay(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, got := ls.Store.Image(), recovered.Image()
	if !bytes.Equal(want, got) {
		t.Fatalf("persisted image differs from post-cascade state:\n-- live --\n%s\n-- replayed --\n%s", want, got)
	}
	// Semantic spot check: every even root is permanently revoked in
	// both stores.
	for i := 0; i < roots; i += 2 {
		if _, perm, _ := recovered.Resolve(rootRefs[i]); !perm {
			t.Fatalf("root %d not permanently false after replay", i)
		}
	}
}
