package credrec

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestReplayReproducesStore(t *testing.T) {
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)

	login := ls.NewFact(True)
	deleg := ls.NewDerived(OpAnd, Of(login))
	group := ls.NewFact(True)
	member := ls.NewDerived(OpAnd, Of(login), Of(deleg), Of(group))
	if err := ls.MarkDirectUse(member); err != nil {
		t.Fatal(err)
	}
	if err := ls.SetState(group, False); err != nil {
		t.Fatal(err)
	}

	// "Crash" and recover.
	recovered, err := Replay(strings.NewReader(journal.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []Ref{login, deleg, group, member} {
		want, werr := ls.Lookup(ref)
		got, gerr := recovered.Lookup(ref)
		if (werr == nil) != (gerr == nil) || got != want {
			t.Fatalf("ref %v: recovered %v/%v, want %v/%v", ref, got, gerr, want, werr)
		}
	}
	// Post-recovery mutations behave identically.
	if err := recovered.SetState(group, True); err != nil {
		t.Fatal(err)
	}
	if !recovered.Valid(member) {
		t.Fatal("recovered graph does not propagate")
	}
}

func TestReplayPreservesRevocation(t *testing.T) {
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	root := ls.NewFact(True)
	child := ls.NewDerived(OpAnd, Of(root))
	if err := ls.MarkDirectUse(child); err != nil {
		t.Fatal(err)
	}
	if err := ls.Invalidate(root); err != nil {
		t.Fatal(err)
	}
	recovered, err := Replay(strings.NewReader(journal.String()))
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Valid(child) {
		t.Fatal("revocation lost across recovery")
	}
	// Permanence too: the record cannot be resurrected.
	if err := recovered.SetState(root, True); err == nil {
		t.Fatal("permanent record mutable after recovery")
	}
}

func TestReplayPreservesSweepAllocation(t *testing.T) {
	// The GC's slot reuse is deterministic: references minted after a
	// sweep are identical in the recovered store, so certificates issued
	// post-sweep pre-crash still resolve.
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	a := ls.NewFact(True)
	if err := ls.Invalidate(a); err != nil {
		t.Fatal(err)
	}
	ls.Sweep()
	b := ls.NewFact(True) // reuses a's slot with bumped magic
	if err := ls.MarkDirectUse(b); err != nil {
		t.Fatal(err)
	}

	recovered, err := Replay(strings.NewReader(journal.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Valid(b) {
		t.Fatal("post-sweep reference does not resolve after recovery")
	}
	if _, err := recovered.Lookup(a); err == nil {
		t.Fatal("swept reference resolves after recovery")
	}
}

func TestReplayErrors(t *testing.T) {
	bad := []string{
		"gibberish 1",
		"fact",           // missing state
		"derived 1 zz",   // bad parent
		"set 999999 2",   // dangling ref
		"ext noquotes 2", // unquoted source
		"invalidate",     // missing ref
	}
	for _, src := range bad {
		if _, err := Replay(strings.NewReader(src)); err == nil {
			t.Errorf("Replay(%q) succeeded", src)
		}
	}
	// Blank lines are fine.
	if _, err := Replay(strings.NewReader("\n\nfact 2\n\n")); err != nil {
		t.Fatal(err)
	}
}

// Property: for random operation sequences, replaying the journal yields
// a store whose every live reference has the same state as the original.
func TestQuickReplayEquivalence(t *testing.T) {
	f := func(raw []byte) bool {
		var journal bytes.Buffer
		ls := NewLoggedStore(&journal)
		var refs []Ref
		refs = append(refs, ls.NewFact(True), ls.NewFact(True))
		for i := 0; i+1 < len(raw); i += 2 {
			op, sel := raw[i], raw[i+1]
			target := refs[int(sel)%len(refs)]
			switch op % 6 {
			case 0:
				refs = append(refs, ls.NewFact(State(1+int(sel)%3)))
			case 1:
				refs = append(refs, ls.NewDerived(OpAnd, Of(target)))
			case 2:
				_ = ls.SetState(target, State(1+int(sel)%3))
			case 3:
				_ = ls.Invalidate(target)
			case 4:
				_ = ls.MarkDirectUse(target)
			case 5:
				ls.Sweep()
			}
		}
		recovered, err := Replay(strings.NewReader(journal.String()))
		if err != nil {
			return false
		}
		for _, r := range refs {
			want, werr := ls.Lookup(r)
			got, gerr := recovered.Lookup(r)
			if (werr == nil) != (gerr == nil) {
				return false
			}
			if werr == nil && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
