package credrec

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// drain forces the commit queue onto the sink so tests can read the
// journal bytes.
func drain(t *testing.T, ls *LoggedStore) {
	t.Helper()
	if err := ls.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayReproducesStore(t *testing.T) {
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	defer ls.Close()

	login := ls.NewFact(True)
	deleg := ls.NewDerived(OpAnd, Of(login))
	group := ls.NewFact(True)
	member := ls.NewDerived(OpAnd, Of(login), Of(deleg), Of(group))
	if err := ls.MarkDirectUse(member); err != nil {
		t.Fatal(err)
	}
	if err := ls.SetState(group, False); err != nil {
		t.Fatal(err)
	}
	drain(t, ls)

	// "Crash" and recover.
	recovered, err := Replay(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []Ref{login, deleg, group, member} {
		want, werr := ls.Lookup(ref)
		got, gerr := recovered.Lookup(ref)
		if (werr == nil) != (gerr == nil) || got != want {
			t.Fatalf("ref %v: recovered %v/%v, want %v/%v", ref, got, gerr, want, werr)
		}
	}
	// Post-recovery mutations behave identically.
	if err := recovered.SetState(group, True); err != nil {
		t.Fatal(err)
	}
	if !recovered.Valid(member) {
		t.Fatal("recovered graph does not propagate")
	}
}

func TestReplayPreservesRevocation(t *testing.T) {
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	defer ls.Close()
	root := ls.NewFact(True)
	child := ls.NewDerived(OpAnd, Of(root))
	if err := ls.MarkDirectUse(child); err != nil {
		t.Fatal(err)
	}
	if err := ls.Invalidate(root); err != nil {
		t.Fatal(err)
	}
	drain(t, ls)
	recovered, err := Replay(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Valid(child) {
		t.Fatal("revocation lost across recovery")
	}
	// Permanence too: the record cannot be resurrected.
	if err := recovered.SetState(root, True); err == nil {
		t.Fatal("permanent record mutable after recovery")
	}
}

func TestReplayPreservesSweepAllocation(t *testing.T) {
	// The GC's slot reuse is deterministic: references minted after a
	// sweep are identical in the recovered store, so certificates issued
	// post-sweep pre-crash still resolve.
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	defer ls.Close()
	a := ls.NewFact(True)
	if err := ls.Invalidate(a); err != nil {
		t.Fatal(err)
	}
	ls.Sweep()
	b := ls.NewFact(True) // reuses a's slot with bumped magic
	if err := ls.MarkDirectUse(b); err != nil {
		t.Fatal(err)
	}
	drain(t, ls)

	recovered, err := Replay(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Valid(b) {
		t.Fatal("post-sweep reference does not resolve after recovery")
	}
	if _, err := recovered.Lookup(a); err == nil {
		t.Fatal("swept reference resolves after recovery")
	}
}

// journalBytes runs ops on a fresh LoggedStore and returns the journal.
func journalBytes(t *testing.T, ops func(*LoggedStore)) []byte {
	t.Helper()
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	ops(ls)
	drain(t, ls)
	ls.Close()
	return append([]byte(nil), journal.Bytes()...)
}

func TestReplayTornTail(t *testing.T) {
	full := journalBytes(t, func(ls *LoggedStore) {
		a := ls.NewFact(True)
		ls.NewDerived(OpAnd, Of(a))
		_ = ls.Invalidate(a)
	})

	// Every strict prefix of the journal replays without error (the
	// torn final record is dropped), and applies at most the records
	// fully contained in the prefix.
	for cut := 1; cut < len(full); cut++ {
		st := NewStore()
		applied, torn, err := ReplayInto(st, bytes.NewReader(full[:cut]), false)
		if err != nil {
			t.Fatalf("cut=%d: replay failed: %v", cut, err)
		}
		if !torn && applied != recordCount(t, full[:cut]) {
			t.Fatalf("cut=%d: clean replay of a strict prefix applied %d records", cut, applied)
		}
	}

	// Strict mode refuses the same torn prefixes.
	st := NewStore()
	if _, _, err := ReplayInto(st, bytes.NewReader(full[:len(full)-1]), true); err == nil {
		t.Fatal("strict replay tolerated a torn tail")
	}
}

// recordCount parses frames without applying, for test assertions.
func recordCount(t *testing.T, journal []byte) int {
	t.Helper()
	jr := newJournalReader(bytes.NewReader(journal))
	n := 0
	for {
		if _, err := jr.next(); err != nil {
			return n
		}
		n++
	}
}

func TestReplayMidJournalCorruption(t *testing.T) {
	full := journalBytes(t, func(ls *LoggedStore) {
		a := ls.NewFact(True)
		b := ls.NewFact(True)
		_ = ls.MarkDirectUse(a)
		_ = ls.MarkDirectUse(b)
		_ = ls.Invalidate(a)
	})
	// Flip a CRC or payload byte of a non-final record: recovery must
	// fail loudly — committed operations follow the damage. (Frame
	// layout: uvarint len | crc32 | payload, so bytes 1..4 are record
	// one's checksum and the bytes after that its payload.)
	for _, pos := range []int{1, 2, 5, 6} {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0xff
		if _, err := Replay(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("corruption at byte %d went undetected", pos)
		} else if !errors.Is(err, ErrJournalCorrupt) {
			t.Errorf("corruption at byte %d: error %v is not ErrJournalCorrupt", pos, err)
		}
	}

	// A zeroed length byte is structural corruption.
	zeroLen := append([]byte(nil), full...)
	zeroLen[0] = 0
	if _, err := Replay(bytes.NewReader(zeroLen)); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("zero-length record: %v, want ErrJournalCorrupt", err)
	}

	// A corrupted length byte can swallow the rest of the stream as one
	// bogus over-long frame — at frame granularity that is
	// indistinguishable from a torn tail, which is exactly why the
	// engine replays every segment except the last in strict mode:
	// there it MUST fail.
	lenFlip := append([]byte(nil), full...)
	lenFlip[7] ^= 0xff // record two's length varint
	st := NewStore()
	if _, _, err := ReplayInto(st, bytes.NewReader(lenFlip), true); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("strict replay of length-corrupted journal: %v, want ErrJournalCorrupt", err)
	}
}

// failingSink errors on the nth write; satellite regression for the
// silent write-error swallowing of the text journal (the old
// persist.go:42 Fprintf dropped errors on the floor).
type failingSink struct {
	mu     sync.Mutex
	writes int
	failAt int
	data   []byte
}

func (s *failingSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	if s.writes >= s.failAt {
		return 0, fmt.Errorf("disk on fire")
	}
	s.data = append(s.data, p...)
	return len(p), nil
}

func (s *failingSink) Sync() error { return nil }

func TestJournalWriteErrorFailStop(t *testing.T) {
	sink := &failingSink{failAt: 1}
	ls := NewLoggedStoreWith(NewStore(), sink, JournalOptions{Sync: SyncAlways})
	defer ls.Close()

	// The failing mutation surfaces the journal error (SyncAlways
	// blocks until the commit attempt).
	if err := ls.SetState(ls.NewFact(True), False); err == nil {
		t.Fatal("journal write failure not surfaced")
	}
	if ls.Err() == nil {
		t.Fatal("sticky error not recorded")
	}

	// The store fail-stops: no further mutation is applied or queued.
	before := ls.Live()
	if ref := ls.NewFact(True); (ref != Ref{}) {
		t.Fatalf("allocation on a failed store returned live ref %v", ref)
	}
	if err := ls.SetState(Ref{}, True); err == nil {
		t.Fatal("mutation on a failed store succeeded")
	}
	if got := ls.Live(); got != before {
		t.Fatalf("failed store mutated: %d -> %d live records", before, got)
	}
	if err := ls.Sync(); err == nil {
		t.Fatal("Sync on a failed store reported success")
	}
}

// TestSyncAlwaysAllocatorFailureReturnsZeroRef pins the other half of
// the SyncAlways contract: the allocator whose own record fails to
// reach stable storage must not hand out a live Ref — the documented
// failure convention is the zero Ref, and a live Ref here would name a
// record that vanishes at the next recovery.
func TestSyncAlwaysAllocatorFailureReturnsZeroRef(t *testing.T) {
	sink := &failingSink{failAt: 2}
	ls := NewLoggedStoreWith(NewStore(), sink, JournalOptions{Sync: SyncAlways})
	defer ls.Close()
	if ref := ls.NewFact(True); (ref == Ref{}) {
		t.Fatal("healthy allocation returned the zero Ref")
	}
	// SyncAlways commits each mutation as its own batch, so this is the
	// second write — the failing one.
	if ref := ls.NewExternal("login", True); (ref != Ref{}) {
		t.Fatalf("allocator returned live ref %v for a record that never reached stable storage", ref)
	}
	if ls.Err() == nil {
		t.Fatal("store did not fail-stop")
	}
	if ref := ls.NewDerived(OpAnd); (ref != Ref{}) {
		t.Fatalf("fail-stopped store allocated %v", ref)
	}
}

// errReader yields its bytes, then a device error instead of io.EOF.
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestReplayReadErrorIsNotTorn: a genuine device read error mid-record
// must fail recovery loudly. Mapping it to a torn tail would silently
// drop committed — possibly acknowledged — records.
func TestReplayReadErrorIsNotTorn(t *testing.T) {
	full := journalBytes(t, func(ls *LoggedStore) {
		a := ls.NewFact(True)
		_ = ls.Invalidate(a)
	})
	devErr := errors.New("device read error")
	// End the readable bytes inside the final record's frame so the
	// failure lands in io.ReadFull — the path that used to map every
	// error to a torn tail.
	st := NewStore()
	applied, torn, err := ReplayInto(st, &errReader{data: full[:len(full)-2], err: devErr}, false)
	if torn {
		t.Fatalf("device error reported as torn tail (applied %d)", applied)
	}
	if !errors.Is(err, devErr) {
		t.Fatalf("replay error %v does not wrap the device error", err)
	}
}

func TestSyncAlwaysDurableOnReturn(t *testing.T) {
	sink := &failingSink{failAt: 1 << 30}
	ls := NewLoggedStoreWith(NewStore(), sink, JournalOptions{Sync: SyncAlways})
	defer ls.Close()
	ref := ls.NewFact(True)
	if err := ls.Invalidate(ref); err != nil {
		t.Fatal(err)
	}
	// With SyncAlways the journal bytes are on the sink before the
	// mutator returns — no Sync/drain needed.
	sink.mu.Lock()
	data := append([]byte(nil), sink.data...)
	sink.mu.Unlock()
	recovered, err := Replay(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if s, _, _ := recovered.Resolve(ref); s != False {
		t.Fatalf("revocation not durable at mutator return: state %v", s)
	}
}

func TestClosedStoreRefusesMutation(t *testing.T) {
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	ref := ls.NewFact(True)
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ls.SetState(ref, False); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("mutation after Close: %v, want ErrStoreClosed", err)
	}
	if ref2 := ls.NewFact(True); (ref2 != Ref{}) {
		t.Fatal("allocation after Close returned a live ref")
	}
	// Reads still work.
	if !ls.Valid(ref) {
		t.Fatal("read path broken after Close")
	}
}

// Satellite regression: slot reuse must survive the snapshot boundary.
// A sweep frees slots, the snapshot captures the free list, and
// allocations journaled *after* the snapshot must mint identical
// references when replayed into the restored snapshot.
func TestSweepFreeListAcrossSnapshotBoundary(t *testing.T) {
	var journal bytes.Buffer
	ls := NewLoggedStore(&journal)
	defer ls.Close()

	var victims []Ref
	for i := 0; i < 40; i++ {
		victims = append(victims, ls.NewFact(True))
	}
	keep := ls.NewFact(True)
	if err := ls.MarkDirectUse(keep); err != nil {
		t.Fatal(err)
	}
	for _, v := range victims {
		if err := ls.Invalidate(v); err != nil {
			t.Fatal(err)
		}
	}
	ls.Sweep() // 40 slots onto the free lists

	// Snapshot at the sweep boundary; remember where the tail starts.
	var snap bytes.Buffer
	var tailOffset int
	ls.Snapshot(func() {
		if err := ls.WriteSnapshot(&snap); err != nil {
			t.Fatal(err)
		}
		tailOffset = journal.Len()
	})

	// Post-snapshot allocations reuse swept slots.
	var reused []Ref
	for i := 0; i < 48; i++ {
		reused = append(reused, ls.NewFact(True))
	}
	drain(t, ls)

	restored, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayInto(restored, bytes.NewReader(journal.Bytes()[tailOffset:]), true); err != nil {
		t.Fatal(err)
	}
	for i, want := range reused {
		if got, err := restored.Lookup(want); err != nil || got != True {
			t.Fatalf("reused ref %d (%v) does not resolve after snapshot+tail recovery: %v %v", i, want, got, err)
		}
	}
	// Future allocation stays deterministic: the next mint matches.
	a, b := ls.NewFact(True), restored.NewFact(True)
	if a != b {
		t.Fatalf("allocation diverged after recovery: live %v vs recovered %v", a, b)
	}
	if !bytes.Equal(ls.Store.Image(), restored.Image()) {
		t.Fatal("image diverged after post-recovery allocation")
	}
}

// Property: for random operation sequences, replaying the journal yields
// a store whose every live reference has the same state as the original.
func TestQuickReplayEquivalence(t *testing.T) {
	f := func(raw []byte) bool {
		var journal bytes.Buffer
		ls := NewLoggedStore(&journal)
		defer ls.Close()
		var refs []Ref
		refs = append(refs, ls.NewFact(True), ls.NewFact(True))
		for i := 0; i+1 < len(raw); i += 2 {
			op, sel := raw[i], raw[i+1]
			target := refs[int(sel)%len(refs)]
			switch op % 6 {
			case 0:
				refs = append(refs, ls.NewFact(State(1+int(sel)%3)))
			case 1:
				refs = append(refs, ls.NewDerived(OpAnd, Of(target)))
			case 2:
				_ = ls.SetState(target, State(1+int(sel)%3))
			case 3:
				_ = ls.Invalidate(target)
			case 4:
				_ = ls.MarkDirectUse(target)
			case 5:
				ls.Sweep()
			}
		}
		if err := ls.Sync(); err != nil {
			return false
		}
		recovered, err := Replay(bytes.NewReader(journal.Bytes()))
		if err != nil {
			return false
		}
		for _, r := range refs {
			want, werr := ls.Lookup(r)
			got, gerr := recovered.Lookup(r)
			if (werr == nil) != (gerr == nil) {
				return false
			}
			if werr == nil && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---- text baseline (the pre-engine journal format) ----

func TestTextReplayReproducesStore(t *testing.T) {
	var journal bytes.Buffer
	ls := NewTextLoggedStore(&journal)
	login := ls.NewFact(True)
	member := ls.NewDerived(OpAnd, Of(login))
	if err := ls.MarkDirectUse(member); err != nil {
		t.Fatal(err)
	}
	if err := ls.Invalidate(login); err != nil {
		t.Fatal(err)
	}
	recovered, err := ReplayText(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Valid(member) {
		t.Fatal("revocation lost across text recovery")
	}
	if !bytes.Equal(ls.Store.Image(), recovered.Image()) {
		t.Fatal("text replay image differs")
	}
}

func TestTextReplayErrors(t *testing.T) {
	bad := []string{
		"gibberish 1",
		"fact",           // missing state
		"derived 1 zz",   // bad parent
		"set 999999 2",   // dangling ref
		"ext noquotes 2", // unquoted source
		"invalidate",     // missing ref
	}
	for _, src := range bad {
		if _, err := ReplayText(bytes.NewReader([]byte(src))); err == nil {
			t.Errorf("ReplayText(%q) succeeded", src)
		}
	}
	// Blank lines are fine.
	if _, err := ReplayText(bytes.NewReader([]byte("\n\nfact 2\n\n"))); err != nil {
		t.Fatal(err)
	}
}
