package credrec

import (
	"hash/maphash"
	"sync"
)

// Groups manages credential records for group membership (§4.8.1).
// Rather than storing a record for every possible membership, a hash
// table of "interesting" credentials is kept, indexed by (member, group):
// those with child records or used by an external server. When group
// membership changes, the corresponding record — if any — is updated and
// the change propagates through the graph.
//
// The table is hash-striped like the record store itself: membership
// tests on the entry hot path (§3.2.2 constraint evaluation) take one
// shard read lock, so lookups of unrelated (member, group) pairs never
// contend. Lock order: a Groups shard lock may be held while acquiring
// Store locks (AddMember/RemoveMember propagate state changes with the
// shard held); the Store never calls back into Groups, so the reverse
// edge cannot occur.
type Groups struct {
	st   Recorder
	seed maphash.Seed

	shards [numShards]groupShard
}

type groupShard struct {
	mu          sync.RWMutex
	members     map[groupKey]bool
	interesting map[groupKey]Ref
}

type groupKey struct {
	member string
	group  string
}

// NewGroups creates a group-membership manager over the given store.
func NewGroups(st Recorder) *Groups {
	g := &Groups{st: st, seed: maphash.MakeSeed()}
	for i := range g.shards {
		g.shards[i].members = make(map[groupKey]bool)
		g.shards[i].interesting = make(map[groupKey]Ref)
	}
	return g
}

func (g *Groups) shardFor(k groupKey) *groupShard {
	var h maphash.Hash
	h.SetSeed(g.seed)
	h.WriteString(k.member)
	h.WriteByte(0)
	h.WriteString(k.group)
	return &g.shards[h.Sum64()%numShards]
}

// AddMember records that member belongs to group, updating any
// interesting credential record.
func (g *Groups) AddMember(member, group string) {
	k := groupKey{member, group}
	sh := g.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.members[k] = true
	if ref, ok := sh.interesting[k]; ok {
		if err := g.st.SetState(ref, True); err != nil {
			// Record became permanent or was swept; a future
			// CredentialFor will mint a fresh one.
			delete(sh.interesting, k)
		}
	}
}

// RemoveMember records that member no longer belongs to group. Any
// certificate whose membership rule mentions this group membership is
// revoked by propagation (the worked example of §3.2.3).
func (g *Groups) RemoveMember(member, group string) {
	k := groupKey{member, group}
	sh := g.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.members, k)
	if ref, ok := sh.interesting[k]; ok {
		if err := g.st.SetState(ref, False); err != nil {
			delete(sh.interesting, k)
		}
	}
}

// IsMember reports current membership.
func (g *Groups) IsMember(member, group string) bool {
	k := groupKey{member, group}
	sh := g.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.members[k]
}

// CredentialFor returns the credential record representing the (member,
// group) membership, creating it — with the current truth value — if it
// is not already interesting. Membership lookup returns a reference as a
// side effect (§4.7, rule 3).
func (g *Groups) CredentialFor(member, group string) Ref {
	k := groupKey{member, group}
	sh := g.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ref, ok := sh.interesting[k]; ok {
		if _, err := g.st.Lookup(ref); err == nil {
			return ref
		}
		delete(sh.interesting, k)
	}
	s := False
	if sh.members[k] {
		s = True
	}
	ref := g.st.NewFact(s)
	sh.interesting[k] = ref
	return ref
}

// Interesting reports the number of live interesting credentials (for
// tests and benchmarks: this stays far below members × groups).
func (g *Groups) Interesting() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		n += len(sh.interesting)
		sh.mu.RUnlock()
	}
	return n
}

// Compact drops hash entries whose records have been garbage collected.
func (g *Groups) Compact() {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for k, ref := range sh.interesting {
			if _, err := g.st.Lookup(ref); err != nil {
				delete(sh.interesting, k)
			}
		}
		sh.mu.Unlock()
	}
}
