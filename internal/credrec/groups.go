package credrec

import "sync"

// Groups manages credential records for group membership (§4.8.1).
// Rather than storing a record for every possible membership, a hash
// table of "interesting" credentials is kept, indexed by (member, group):
// those with child records or used by an external server. When group
// membership changes, the corresponding record — if any — is updated and
// the change propagates through the graph.
type Groups struct {
	st *Store

	mu          sync.Mutex
	members     map[groupKey]bool
	interesting map[groupKey]Ref
}

type groupKey struct {
	member string
	group  string
}

// NewGroups creates a group-membership manager over the given store.
func NewGroups(st *Store) *Groups {
	return &Groups{
		st:          st,
		members:     make(map[groupKey]bool),
		interesting: make(map[groupKey]Ref),
	}
}

// AddMember records that member belongs to group, updating any
// interesting credential record.
func (g *Groups) AddMember(member, group string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := groupKey{member, group}
	g.members[k] = true
	if ref, ok := g.interesting[k]; ok {
		if err := g.st.SetState(ref, True); err != nil {
			// Record became permanent or was swept; a future
			// CredentialFor will mint a fresh one.
			delete(g.interesting, k)
		}
	}
}

// RemoveMember records that member no longer belongs to group. Any
// certificate whose membership rule mentions this group membership is
// revoked by propagation (the worked example of §3.2.3).
func (g *Groups) RemoveMember(member, group string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := groupKey{member, group}
	delete(g.members, k)
	if ref, ok := g.interesting[k]; ok {
		if err := g.st.SetState(ref, False); err != nil {
			delete(g.interesting, k)
		}
	}
}

// IsMember reports current membership.
func (g *Groups) IsMember(member, group string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members[groupKey{member, group}]
}

// CredentialFor returns the credential record representing the (member,
// group) membership, creating it — with the current truth value — if it
// is not already interesting. Membership lookup returns a reference as a
// side effect (§4.7, rule 3).
func (g *Groups) CredentialFor(member, group string) Ref {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := groupKey{member, group}
	if ref, ok := g.interesting[k]; ok {
		if _, err := g.st.Lookup(ref); err == nil {
			return ref
		}
		delete(g.interesting, k)
	}
	s := False
	if g.members[k] {
		s = True
	}
	ref := g.st.NewFact(s)
	g.interesting[k] = ref
	return ref
}

// Interesting reports the number of live interesting credentials (for
// tests and benchmarks: this stays far below members × groups).
func (g *Groups) Interesting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.interesting)
}

// Compact drops hash entries whose records have been garbage collected.
func (g *Groups) Compact() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for k, ref := range g.interesting {
		if _, err := g.st.Lookup(ref); err != nil {
			delete(g.interesting, k)
		}
	}
}
