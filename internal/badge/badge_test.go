package badge

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/composite"
	"oasis/internal/event"
	"oasis/internal/value"
)

type badgeHarness struct {
	clk *clock.Virtual
	net *bus.Network
	a   *Site // Cambridge
	b   *Site // Parc
	c   *Site // DEC
}

func newBadgeHarness(t *testing.T) *badgeHarness {
	t.Helper()
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)
	mk := func(name string) *Site {
		s, err := NewSite(name, clk, net)
		if err != nil {
			t.Fatal(err)
		}
		s.AddSensor(name+"-s1", "T14")
		s.AddSensor(name+"-s2", "T15")
		return s
	}
	return &badgeHarness{clk: clk, net: net, a: mk("CL"), b: mk("Parc"), c: mk("DEC")}
}

type eventLog struct {
	mu  sync.Mutex
	evs []event.Event
}

func (l *eventLog) Deliver(n event.Notification) {
	if n.Heartbeat {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evs = append(l.evs, n.Event)
}

func (l *eventLog) named(name string) []event.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []event.Event
	for _, e := range l.evs {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

func subscribe(t *testing.T, s *Site, tmpl event.Template) *eventLog {
	t.Helper()
	log := &eventLog{}
	sess, err := s.Broker().OpenSession(log, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Broker().Register(sess, tmpl); err != nil {
		t.Fatal(err)
	}
	return log
}

func TestSightingSignalsSeen(t *testing.T) {
	h := newBadgeHarness(t)
	log := subscribe(t, h.a, event.NewTemplate(EvSeen, event.Wildcard(), event.Wildcard()))
	rjh := Badge{ID: "b12", Home: "CL"}
	if err := h.a.RegisterBadge(rjh, "rjh21"); err != nil {
		t.Fatal(err)
	}
	h.a.Sight(rjh, "CL-s1")
	seen := log.named(EvSeen)
	if len(seen) != 1 {
		t.Fatalf("Seen events = %d", len(seen))
	}
	if seen[0].Args[0].S != "b12" || seen[0].Args[1].S != "T14" {
		t.Fatalf("Seen = %v", seen[0])
	}
}

func TestInterSiteProtocol(t *testing.T) {
	// Figure 6.2: a CL badge seen at Parc, then at DEC. The home site
	// always knows its location, and Parc's naming info is deleted when
	// the badge moves on (E20).
	h := newBadgeHarness(t)
	moved := subscribe(t, h.a, event.NewTemplate(EvMovedSite, event.Wildcard(), event.Wildcard(), event.Wildcard()))
	rjh := Badge{ID: "b12", Home: "CL"}
	if err := h.a.RegisterBadge(rjh, "rjh21"); err != nil {
		t.Fatal(err)
	}

	// (a) seen at Parc.
	h.b.Sight(rjh, "Parc-s1")
	if loc, _ := h.a.LocationOf("b12"); loc != "Parc" {
		t.Fatalf("home location = %q, want Parc", loc)
	}
	if owner, ok := h.b.OwnerOf("b12"); !ok || owner != "rjh21" {
		t.Fatalf("Parc naming info = %q, %v", owner, ok)
	}

	// (b) seen at DEC: home updates, Parc's info is deleted.
	h.c.Sight(rjh, "DEC-s1")
	if loc, _ := h.a.LocationOf("b12"); loc != "DEC" {
		t.Fatalf("home location = %q, want DEC", loc)
	}
	if h.b.Knows("b12") {
		t.Fatal("Parc kept stale naming info after the badge left")
	}
	if owner, _ := h.c.OwnerOf("b12"); owner != "rjh21" {
		t.Fatal("DEC did not receive naming info")
	}

	// MovedSite events were signalled by the home site.
	ms := moved.named(EvMovedSite)
	if len(ms) != 2 {
		t.Fatalf("MovedSite events = %d", len(ms))
	}
	if ms[0].Args[2].S != "Parc" || ms[1].Args[1].S != "Parc" || ms[1].Args[2].S != "DEC" {
		t.Fatalf("MovedSite sequence = %v", ms)
	}
}

func TestReturnHome(t *testing.T) {
	h := newBadgeHarness(t)
	rjh := Badge{ID: "b12", Home: "CL"}
	if err := h.a.RegisterBadge(rjh, "rjh21"); err != nil {
		t.Fatal(err)
	}
	h.b.Sight(rjh, "Parc-s1")
	h.a.Sight(rjh, "CL-s1")
	if loc, _ := h.a.LocationOf("b12"); loc != "CL" {
		t.Fatalf("location = %q", loc)
	}
}

func TestHomeUnreachableDegradesGracefully(t *testing.T) {
	h := newBadgeHarness(t)
	rjh := Badge{ID: "b12", Home: "CL"}
	if err := h.a.RegisterBadge(rjh, "rjh21"); err != nil {
		t.Fatal(err)
	}
	h.net.SetDown("CL", "Parc", true)
	log := subscribe(t, h.b, event.NewTemplate(EvSeen, event.Wildcard(), event.Wildcard()))
	h.b.Sight(rjh, "Parc-s1")
	// Sightings still flow; naming info is simply absent.
	if len(log.named(EvSeen)) != 1 {
		t.Fatal("sighting lost during partition")
	}
	if h.b.Knows("b12") {
		t.Fatal("naming info appeared despite partition")
	}
}

func TestUnknownForeignBadgeRejectedByFakeHome(t *testing.T) {
	h := newBadgeHarness(t)
	// A badge claiming CL as home that CL never registered.
	fake := Badge{ID: "bogus", Home: "CL"}
	h.b.Sight(fake, "Parc-s1")
	if h.b.Knows("bogus") {
		t.Fatal("naming info conjured for unregistered badge")
	}
}

func TestDBRegisterOwnsClosesRace(t *testing.T) {
	// §6.3.3: combined Lookup and Register. The monitoring application
	// sees the existing badge AND the later reassignment, atomically.
	h := newBadgeHarness(t)
	rjh := Badge{ID: "b12", Home: "CL"}
	if err := h.a.RegisterBadge(rjh, "rjh21"); err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	sess, err := h.a.Broker().OpenSession(log, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, existing, err := h.a.DBRegisterOwns(sess, "rjh21")
	if err != nil {
		t.Fatal(err)
	}
	if len(existing) != 1 || existing[0].Args[1].S != "b12" {
		t.Fatalf("existing = %v", existing)
	}
	// Battery dies; rjh21 gets a new badge. The update arrives as an
	// OwnsBadge event.
	if err := h.a.ReassignBadge(Badge{ID: "b99", Home: "CL"}, "rjh21"); err != nil {
		t.Fatal(err)
	}
	ob := log.named(EvOwnsBadge)
	if len(ob) != 1 || ob[0].Args[1].S != "b99" {
		t.Fatalf("OwnsBadge updates = %v", ob)
	}
}

func TestMonitoringAppAcrossBadgeChange(t *testing.T) {
	// The 5-step monitoring loop of §6.3.3, built on the composite
	// machine: whenever rjh21's badge assignment changes, watch the new
	// badge.
	h := newBadgeHarness(t)
	if err := h.a.RegisterBadge(Badge{ID: "b12", Home: "CL"}, "rjh21"); err != nil {
		t.Fatal(err)
	}

	expr := composite.MustParse(`$OwnsBadge("rjh21", b); Seen(b, room)`, composite.ParseOptions{})
	var sightings []string
	m := composite.NewMachine(expr, func(o composite.Occurrence) {
		sightings = append(sightings, o.Env["b"].S+"@"+o.Env["room"].S)
	}, composite.MachineOptions{})
	// Start strictly before the retrospective feed: base events match
	// strictly after the evaluation start time.
	m.Start(h.clk.Now().Add(-time.Second), value.Env{})

	// Wire the site's broker into the machine.
	sink := event.SinkFunc(func(n event.Notification) {
		if !n.Heartbeat {
			m.Process(n.Event)
		}
	})
	sess, err := h.a.Broker().OpenSession(sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	// DBRegister: existing tuples fed to the machine, updates live.
	_, existing, err := h.a.DBRegisterOwns(sess, "rjh21")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.a.Broker().Register(sess, event.NewTemplate(EvSeen, event.Wildcard(), event.Wildcard())); err != nil {
		t.Fatal(err)
	}
	for _, e := range existing {
		e.Time = h.clk.Now()
		m.Process(e)
	}

	h.clk.Advance(time.Second)
	h.a.Sight(Badge{ID: "b12", Home: "CL"}, "CL-s1")
	h.clk.Advance(time.Second)
	if err := h.a.ReassignBadge(Badge{ID: "b99", Home: "CL"}, "rjh21"); err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(time.Second)
	h.a.Sight(Badge{ID: "b99", Home: "CL"}, "CL-s2")

	if len(sightings) != 2 || sightings[0] != "b12@T14" || sightings[1] != "b99@T15" {
		t.Fatalf("sightings = %v", sightings)
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() (string, int) {
		clk := clock.NewVirtual(time.Unix(0, 0))
		net := bus.NewNetwork(clk)
		s1, _ := NewSite("S1", clk, net)
		s2, _ := NewSite("S2", clk, net)
		sensors := map[string][]string{
			"S1": DefaultSensors(s1, 3),
			"S2": DefaultSensors(s2, 3),
		}
		sim := NewSim(clk, []*Site{s1, s2}, sensors, 42)
		for i := 0; i < 5; i++ {
			id := "b" + string(rune('0'+i))
			if err := sim.AddBadge(id, "u"+id, i%2); err != nil {
				t.Fatal(err)
			}
		}
		sim.Run(20, 100*time.Millisecond)
		loc, _ := s1.LocationOf("b0")
		return loc, sim.Badges()
	}
	l1, n1 := run()
	l2, n2 := run()
	if l1 != l2 || n1 != n2 {
		t.Fatalf("simulation not deterministic: %q/%d vs %q/%d", l1, n1, l2, n2)
	}
}

// TestSimHomeAlwaysKnowsLocation is the figure 6.2 invariant at scale:
// after every simulation step, each badge's home site records the site
// where it was last sighted, and at most one non-home site holds its
// naming information.
func TestSimHomeAlwaysKnowsLocation(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	var sites []*Site
	sensors := map[string][]string{}
	for i := 0; i < 3; i++ {
		s, err := NewSite(fmt.Sprintf("S%d", i), clk, net)
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, s)
		sensors[s.Name()] = DefaultSensors(s, 2)
	}
	sim := NewSim(clk, sites, sensors, 7)
	for i := 0; i < 9; i++ {
		if err := sim.AddBadge(fmt.Sprintf("b%d", i), "u", i%3); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 40; step++ {
		sim.Step(50 * time.Millisecond)
		for i := 0; i < 9; i++ {
			id := fmt.Sprintf("b%d", i)
			home := sites[i%3]
			loc, ok := home.LocationOf(id)
			if !ok {
				t.Fatalf("step %d: home lost track of %s", step, id)
			}
			holders := 0
			for _, s := range sites {
				if s.Name() != home.Name() && s.Knows(id) {
					holders++
					if s.Name() != loc {
						t.Fatalf("step %d: %s's info cached at %s but located at %s",
							step, id, s.Name(), loc)
					}
				}
			}
			if holders > 1 {
				t.Fatalf("step %d: %s known at %d foreign sites", step, id, holders)
			}
		}
	}
}
