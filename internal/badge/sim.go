package badge

import (
	"fmt"
	"time"

	"oasis/internal/clock"
)

// Sim drives a deterministic badge-movement workload over a set of
// sites — the substitution for physical badges and IR sensors (see
// DESIGN.md): badges walk between rooms and occasionally between sites,
// at a configurable rate on the virtual clock.
type Sim struct {
	clk   *clock.Virtual
	sites []*Site
	rooms map[string][]string // site -> sensors
	seed  uint64
	where map[string]int // badge -> site index
	b     []Badge
}

// NewSim creates a simulation over the sites; each must already have
// sensors installed (AddSensor).
func NewSim(clk *clock.Virtual, sites []*Site, sensors map[string][]string, seed uint64) *Sim {
	return &Sim{
		clk:   clk,
		sites: sites,
		rooms: sensors,
		seed:  seed | 1,
		where: make(map[string]int),
	}
}

// AddBadge registers a badge at its home site and adds it to the walk.
func (s *Sim) AddBadge(id, owner string, homeIdx int) error {
	b := Badge{ID: id, Home: s.sites[homeIdx].Name()}
	if err := s.sites[homeIdx].RegisterBadge(b, owner); err != nil {
		return err
	}
	s.b = append(s.b, b)
	s.where[id] = homeIdx
	return nil
}

// rand is a small deterministic LCG (the module is stdlib-only and the
// simulations must be reproducible).
func (s *Sim) rand() uint64 {
	s.seed = s.seed*6364136223846793005 + 1442695040888963407
	return s.seed >> 33
}

// Step advances the simulation: every badge is sighted once, in a room
// chosen pseudo-randomly; with probability ~1/16 a badge migrates to
// another site first. The clock advances `dt` per step.
func (s *Sim) Step(dt time.Duration) {
	for _, b := range s.b {
		idx := s.where[b.ID]
		if len(s.sites) > 1 && s.rand()%16 == 0 {
			idx = int(s.rand()) % len(s.sites)
			s.where[b.ID] = idx
		}
		site := s.sites[idx]
		sensors := s.rooms[site.Name()]
		if len(sensors) == 0 {
			continue
		}
		sensor := sensors[int(s.rand())%len(sensors)]
		site.Sight(b, sensor)
		s.clk.Advance(dt)
	}
}

// Run executes n steps.
func (s *Sim) Run(n int, dt time.Duration) {
	for i := 0; i < n; i++ {
		s.Step(dt)
	}
}

// Badges reports the simulated badge count.
func (s *Sim) Badges() int { return len(s.b) }

// DefaultSensors builds k sensors named "<site>-s<i>" mapped to rooms
// "T<i>" and installs them.
func DefaultSensors(site *Site, k int) []string {
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		sensor := fmt.Sprintf("%s-s%d", site.Name(), i)
		site.AddSensor(sensor, fmt.Sprintf("T%d", i+14))
		out = append(out, sensor)
	}
	return out
}
