package badge

import (
	"sync"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/composite"
	"oasis/internal/event"
	"oasis/internal/value"
)

// monitorEndpoint is a monitoring client attached to the network so
// that link delay and failure injection apply to its event stream.
type monitorEndpoint struct {
	mu sync.Mutex
	m  *composite.Machine
}

func (e *monitorEndpoint) Call(from, op string, arg any) (any, error) { return nil, nil }

func (e *monitorEndpoint) Deliver(n event.Notification) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.m.ProcessHorizon(n.Source, n.Horizon)
	if !n.Heartbeat {
		e.m.Process(n.Event)
	}
}

// TestDelayedSiteDetectionOrder is figure 6.4 over the real substrate:
// a composite detector subscribed to two badge sites, with the link
// from one site delayed. The meeting at the fast site is detected as
// soon as its events arrive; the delayed site's meeting is detected
// when its events finally flush; nothing is lost.
func TestDelayedSiteDetectionOrder(t *testing.T) {
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)
	siteA, err := NewSite("T14site", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	siteB, err := NewSite("T15site", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	siteA.AddSensor("a1", "T14")
	siteB.AddSensor("b1", "T15")
	roger := Badge{ID: "roger", Home: "T14site"}
	giles := Badge{ID: "giles", Home: "T14site"}
	if err := siteA.RegisterBadge(roger, "roger"); err != nil {
		t.Fatal(err)
	}
	if err := siteA.RegisterBadge(giles, "giles"); err != nil {
		t.Fatal(err)
	}

	var detections []string
	mon := &monitorEndpoint{}
	mon.m = composite.NewMachine(
		composite.MustParse(`$Seen("roger", R); Seen("giles", R)`, composite.ParseOptions{}),
		func(o composite.Occurrence) {
			// Deliver already serialises machine input; the callback runs
			// under its lock.
			detections = append(detections, o.Env["R"].S)
		},
		composite.MachineOptions{})
	mon.m.Start(clk.Now(), value.Env{})
	if err := net.Register("Monitor", mon); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Site{siteA, siteB} {
		sess, err := s.Broker().OpenSession(net.Sink(s.Name(), "Monitor"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Broker().Register(sess,
			event.NewTemplate(EvSeen, event.Wildcard(), event.Wildcard())); err != nil {
			t.Fatal(err)
		}
	}

	// Site A's link to the monitor is slow.
	net.SetDelay("T14site", "Monitor", 30*time.Second)

	// Meeting 1 in T14 (site A, delayed), meeting 2 in T15 (site B).
	siteA.Sight(roger, "a1")
	clk.Advance(time.Second)
	siteA.Sight(giles, "a1")
	clk.Advance(time.Second)
	siteB.Sight(roger, "b1")
	clk.Advance(time.Second)
	siteB.Sight(giles, "b1")

	if len(detections) != 1 || detections[0] != "T15" {
		t.Fatalf("before flush: detections = %v, want [T15]", detections)
	}

	// The delayed notifications arrive: the earlier meeting is detected
	// too — both evaluations ultimately return the same results
	// (figure 6.4's note).
	clk.Advance(time.Minute)
	net.Flush()
	if len(detections) != 2 || detections[1] != "T14" {
		t.Fatalf("after flush: detections = %v, want [T15 T14]", detections)
	}
}

// TestPartitionedSiteHeartbeatDetection: with a failed link, the
// monitor's receiver detects the silent site via CheckLiveness (§4.10
// applied to the badge system).
func TestPartitionedSiteHeartbeatDetection(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	site, err := NewSite("CL", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	recv := event.NewReceiver(4, nil)
	if err := net.Register("Monitor", busEndpoint{recv}); err != nil {
		t.Fatal(err)
	}
	if _, err := site.Broker().OpenSession(net.Sink("CL", "Monitor"), nil); err != nil {
		t.Fatal(err)
	}
	site.Broker().Heartbeat()
	if failed := recv.CheckLiveness(clk.Now(), 5*time.Second); len(failed) != 0 {
		t.Fatalf("premature failure: %v", failed)
	}
	net.SetDown("CL", "Monitor", true)
	clk.Advance(time.Minute)
	site.Broker().Heartbeat() // dropped
	failed := recv.CheckLiveness(clk.Now(), 5*time.Second)
	if len(failed) != 1 || failed[0] != "CL" {
		t.Fatalf("failed = %v", failed)
	}
}

// busEndpoint adapts a Receiver to bus.Endpoint.
type busEndpoint struct{ r *event.Receiver }

func (b busEndpoint) Call(from, op string, arg any) (any, error) { return nil, nil }
func (b busEndpoint) Deliver(n event.Notification)               { b.r.Deliver(n) }
