// Package badge implements the global Active Badge System of §6.3 of
// the paper: per-site Masters signalling Seen events from sensors, a
// Sighting Cache detecting previously unknown badges, a Namer that is
// an active database (signalling updates as events, with the atomic
// combined lookup-and-register of §6.3.3), and the inter-site protocol
// of figure 6.2 in which each badge's home site always knows its
// location and naming information is deleted from sites the badge has
// left.
package badge

import (
	"fmt"
	"sync"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/event"
	"oasis/internal/value"
)

// Event names signalled by a site's broker.
const (
	// EvSeen is Seen(badge, room): a badge sighted by a sensor. The
	// Master signals sightings directly (§6.3.2).
	EvSeen = "Seen"
	// EvNewBadge is NewBadge(badge, home): the Sighting Cache noticed a
	// badge not currently known at this site.
	EvNewBadge = "NewBadge"
	// EvMovedSite is MovedSite(badge, oldsite, newsite), signalled by
	// the badge's home site (§6.3.1).
	EvMovedSite = "MovedSite"
	// EvOwnsBadge is OwnsBadge(user, badge): an active-database update
	// in the Namer (§6.3.3).
	EvOwnsBadge = "OwnsBadge"
)

// Badge is the physical token: a globally unique identifier plus the
// pointer-to-home stored in the badge's memory (§6.3.1).
type Badge struct {
	ID   string
	Home string
}

// arrivedArg is the inter-site "previously unknown badge sighted here"
// request to the badge's home site.
type arrivedArg struct {
	BadgeID string
	At      string
}

// badgeInfo is the naming information a home site returns.
type badgeInfo struct {
	Owner string
}

// leftArg tells a site the badge has been seen elsewhere, so its cached
// naming information can be deleted (figure 6.2).
type leftArg struct {
	BadgeID string
}

// Site is one organisation's badge system: Master + Sighting Cache +
// Namer, fronted by a single event broker.
type Site struct {
	name   string
	clk    clock.Clock
	net    *bus.Network
	broker *event.Broker

	mu        sync.Mutex
	rooms     map[string]string // sensor -> room
	owns      map[string]string // badge -> user (authoritative for home badges, cached for visitors)
	home      map[string]Badge  // badges registered here
	visiting  map[string]Badge  // foreign badges currently known here
	locations map[string]string // home badges: site last seen at
}

// NewSite creates a badge site and registers it on the network.
func NewSite(name string, clk clock.Clock, net *bus.Network) (*Site, error) {
	return NewSiteWithOptions(name, clk, net, event.BrokerOptions{})
}

// NewSiteWithOptions creates a site whose broker applies the given
// options — in particular the admission and visibility hooks through
// which a local ERDL policy controls who may watch whom (chapter 7;
// each site has relative freedom with its own badge system, §6.3.1).
func NewSiteWithOptions(name string, clk clock.Clock, net *bus.Network, opts event.BrokerOptions) (*Site, error) {
	s := &Site{
		name:      name,
		clk:       clk,
		net:       net,
		broker:    event.NewBroker(name, clk, opts),
		rooms:     make(map[string]string),
		owns:      make(map[string]string),
		home:      make(map[string]Badge),
		visiting:  make(map[string]Badge),
		locations: make(map[string]string),
	}
	if net != nil {
		if err := net.Register(name, s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Name returns the site name.
func (s *Site) Name() string { return s.name }

// Broker exposes the site's event broker for client registration.
func (s *Site) Broker() *event.Broker { return s.broker }

// AddSensor installs a sensor in a room.
func (s *Site) AddSensor(sensor, room string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rooms[sensor] = room
}

// RegisterBadge registers a badge at its home site with an owner; the
// Namer signals the database update as an OwnsBadge event.
func (s *Site) RegisterBadge(b Badge, owner string) error {
	if b.Home != s.name {
		return fmt.Errorf("badge: %s's home is %s, not %s", b.ID, b.Home, s.name)
	}
	s.mu.Lock()
	s.home[b.ID] = b
	s.owns[b.ID] = owner
	s.locations[b.ID] = s.name
	s.mu.Unlock()
	s.broker.Signal(event.New(EvOwnsBadge, value.Str(owner), value.Str(b.ID)))
	return nil
}

// ReassignBadge changes a user's badge — flat batteries, lost badge
// (§6.3.3) — signalling the active-database update.
func (s *Site) ReassignBadge(b Badge, owner string) error {
	return s.RegisterBadge(b, owner)
}

// OwnerOf reports the user associated with a badge, if known here.
func (s *Site) OwnerOf(badgeID string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.owns[badgeID]
	return u, ok
}

// LocationOf reports where a home badge was last seen; the home site
// always knows (figure 6.2).
func (s *Site) LocationOf(badgeID string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.locations[badgeID]
	return l, ok
}

// Knows reports whether the site currently holds naming information for
// a badge (its own or cached for a visitor).
func (s *Site) Knows(badgeID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.owns[badgeID]
	return ok
}

// Sight is the Master's input path: a sensor has decoded a badge's
// broadcast. It signals Seen(badge, room), runs the Sighting Cache's
// new-badge detection, and drives the inter-site protocol.
func (s *Site) Sight(b Badge, sensor string) {
	s.mu.Lock()
	room, ok := s.rooms[sensor]
	if !ok {
		room = sensor // uninstalled sensors name themselves
	}
	_, isHome := s.home[b.ID]
	_, isVisiting := s.visiting[b.ID]
	known := isHome || isVisiting
	s.mu.Unlock()

	// The Master signals sightings directly (§6.3.2).
	s.broker.Signal(event.New(EvSeen, value.Str(b.ID), value.Str(room)))

	if known {
		if isHome {
			s.noteLocation(b.ID, s.name)
		}
		return
	}
	// Sighting Cache: a previously unknown badge.
	s.broker.Signal(event.New(EvNewBadge, value.Str(b.ID), value.Str(b.Home)))
	if b.Home == s.name {
		// A home badge we had no record of: nothing to fetch.
		return
	}
	// Interrogate the badge's pointer-to-home (§6.3.1): inform the home
	// site and receive naming information in return.
	if s.net == nil {
		return
	}
	res, err := s.net.Call(s.name, b.Home, "badge-arrived", arrivedArg{BadgeID: b.ID, At: s.name})
	if err != nil {
		return // home unreachable: sightings still flow, names are absent
	}
	info, ok := res.(badgeInfo)
	if !ok {
		return
	}
	s.mu.Lock()
	s.visiting[b.ID] = b
	s.owns[b.ID] = info.Owner
	s.mu.Unlock()
}

// noteLocation updates a home badge's location, signalling MovedSite
// and asking the site it left to delete its cached information.
func (s *Site) noteLocation(badgeID, newSite string) {
	s.mu.Lock()
	old := s.locations[badgeID]
	if old == newSite {
		s.mu.Unlock()
		return
	}
	s.locations[badgeID] = newSite
	s.mu.Unlock()
	s.broker.Signal(event.New(EvMovedSite,
		value.Str(badgeID), value.Str(old), value.Str(newSite)))
	if old != "" && old != s.name && old != newSite && s.net != nil {
		_, _ = s.net.Call(s.name, old, "badge-left", leftArg{BadgeID: badgeID})
	}
}

// Call implements bus.Endpoint: the inter-site protocol of figure 6.2.
func (s *Site) Call(from, op string, arg any) (any, error) {
	switch op {
	case "badge-arrived":
		a, ok := arg.(arrivedArg)
		if !ok {
			return nil, fmt.Errorf("badge: bad badge-arrived argument %T", arg)
		}
		s.mu.Lock()
		_, isHome := s.home[a.BadgeID]
		owner := s.owns[a.BadgeID]
		s.mu.Unlock()
		if !isHome {
			return nil, fmt.Errorf("badge: %s is not based at %s", a.BadgeID, s.name)
		}
		s.noteLocation(a.BadgeID, a.At)
		return badgeInfo{Owner: owner}, nil
	case "badge-left":
		a, ok := arg.(leftArg)
		if !ok {
			return nil, fmt.Errorf("badge: bad badge-left argument %T", arg)
		}
		s.mu.Lock()
		if _, visiting := s.visiting[a.BadgeID]; visiting {
			delete(s.visiting, a.BadgeID)
			delete(s.owns, a.BadgeID)
		}
		s.mu.Unlock()
		return nil, nil
	default:
		return nil, fmt.Errorf("badge: unknown operation %q", op)
	}
}

// Deliver implements bus.Endpoint (sites currently receive no inbound
// event notifications; monitoring clients subscribe directly).
func (s *Site) Deliver(n event.Notification) {}

var _ bus.Endpoint = (*Site)(nil)

// DBRegisterOwns is the Namer's combined Lookup and Register of §6.3.3:
// atomically return all existing OwnsBadge(user, *) tuples as events
// and register interest in future updates, closing the race between
// lookup and registration.
func (s *Site) DBRegisterOwns(sess uint64, user string) (uint64, []event.Event, error) {
	tmpl := event.NewTemplate(EvOwnsBadge, event.Lit(value.Str(user)), event.Wildcard())
	return s.broker.RegisterAndQuery(sess, tmpl, func() []event.Event {
		var out []event.Event
		s.mu.Lock()
		defer s.mu.Unlock()
		for b, u := range s.owns {
			if u == user {
				if _, isHome := s.home[b]; isHome {
					out = append(out, event.New(EvOwnsBadge, value.Str(u), value.Str(b)))
				}
			}
		}
		return out
	})
}
