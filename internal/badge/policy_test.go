package badge

import (
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/event"
	"oasis/internal/eventsec"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

// TestThreeSiteLocalPolicies wires figure 7.2 into real badge sites:
// each site's broker enforces its own local ERDL policy, so the same
// subject receives different views at different sites (E21 end-to-end).
func TestThreeSiteLocalPolicies(t *testing.T) {
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)

	// Site policies: CL lets users see their own badge only; Parc is
	// open to anyone logged on; DEC publishes nothing to anyone.
	owner := func(b string) string {
		if b == "b12" {
			return "rjh21"
		}
		return "someone-else"
	}
	clPol := eventsec.MustParse(`allow Seen(b, room) to LoggedOn(u) : u = owner(b)`)
	clPol.Funcs = ownerFuncs(owner)
	parcPol := eventsec.MustParse(`allow Seen(b, room) to LoggedOn(u)`)
	decPol := eventsec.MustParse(`deny Seen(b, room) to LoggedOn(u)`)

	mkSite := func(name string, pol *eventsec.Policy) *Site {
		s, err := NewSiteWithOptions(name, clk, net, event.BrokerOptions{
			Admission:  pol.AdmissionFunc(),
			Visibility: pol.VisibilityFunc(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.AddSensor(name+"-s", "T14")
		return s
	}
	cl := mkSite("CL", clPol)
	parc := mkSite("Parc", parcPol)
	dec := mkSite("DEC", decPol)

	b12 := Badge{ID: "b12", Home: "CL"}
	b13 := Badge{ID: "b13", Home: "CL"}
	if err := cl.RegisterBadge(b12, "rjh21"); err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterBadge(b13, "kgm"); err != nil {
		t.Fatal(err)
	}

	rjh := eventsec.Subject{Roles: []eventsec.SubjectRole{
		{Name: "LoggedOn", Args: []value.Value{value.Str("rjh21")}},
	}}
	subscribeAll := func(s *Site) *eventLog {
		t.Helper()
		log := &eventLog{}
		sess, err := s.Broker().OpenSession(log, rjh)
		if err != nil {
			t.Fatalf("open at %s: %v", s.Name(), err)
		}
		if _, err := s.Broker().Register(sess,
			event.NewTemplate(EvSeen, event.Wildcard(), event.Wildcard())); err != nil {
			t.Fatal(err)
		}
		return log
	}
	clLog := subscribeAll(cl)
	parcLog := subscribeAll(parc)
	decLog := subscribeAll(dec)

	// Both badges are sighted at every site.
	for _, s := range []*Site{cl, parc, dec} {
		s.Sight(b12, s.Name()+"-s")
		s.Sight(b13, s.Name()+"-s")
	}

	if got := len(clLog.named(EvSeen)); got != 1 {
		t.Fatalf("CL delivered %d sightings to rjh21, want 1 (own badge only)", got)
	}
	if got := len(parcLog.named(EvSeen)); got != 2 {
		t.Fatalf("Parc delivered %d sightings, want 2 (open policy)", got)
	}
	if got := len(decLog.named(EvSeen)); got != 0 {
		t.Fatalf("DEC delivered %d sightings, want 0 (closed policy)", got)
	}
}

// ownerFuncs builds the owner() constraint function table.
func ownerFuncs(owner func(string) string) rdl.FuncTable {
	return rdl.FuncTable{
		"owner": {
			Result: value.StringType,
			Fn: func(args []value.Value) (value.Value, error) {
				return value.Str(owner(args[0].S)), nil
			},
		},
	}
}
