// Package baseline implements the access-control schemes the paper
// positions OASIS against, so that the comparative claims of §4.5 and
// §4.14 can be measured rather than asserted:
//
//   - capability chaining (Redell): delegation by indirection, with
//     validation cost proportional to the chain length (figure 4.4);
//   - an I-Cap-style scheme (Gong): the issuer checks a signature per
//     capability and revokes by keeping a revocation list consulted on
//     every access;
//   - refresh-based validity (as in [LABW94]): certificates are valid
//     for a short lease and clients continually refresh them, trading
//     background traffic for revocation latency.
package baseline

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"oasis/internal/clock"
)

// ErrRevoked is returned when a capability (or its chain) is revoked.
var ErrRevoked = errors.New("baseline: capability revoked")

// ---- Capability chaining (figure 4.4) ----

// ChainCap is a capability that may be an indirection onto another: to
// use it, every link of the chain must be validated.
type ChainCap struct {
	ID     uint64
	Parent *ChainCap // nil for the root capability
	Rights string
	Sig    []byte
}

// ChainService issues and validates chained capabilities.
type ChainService struct {
	secret  []byte
	nextID  uint64
	revoked map[uint64]bool
	// sigChecks counts signature computations, the cost the paper
	// attributes to long chains ("many cryptographic checks", §4.5).
	sigChecks uint64
}

// NewChainService creates a chained-capability issuer.
func NewChainService(secret []byte) *ChainService {
	return &ChainService{secret: secret, revoked: make(map[uint64]bool)}
}

func (s *ChainService) sign(c *ChainCap) []byte {
	m := hmac.New(sha256.New, s.secret)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], c.ID)
	m.Write(buf[:])
	if c.Parent != nil {
		binary.BigEndian.PutUint64(buf[:], c.Parent.ID)
		m.Write(buf[:])
	}
	m.Write([]byte(c.Rights))
	return m.Sum(nil)[:16]
}

// Issue mints a root capability.
func (s *ChainService) Issue(rights string) *ChainCap {
	s.nextID++
	c := &ChainCap{ID: s.nextID, Rights: rights}
	c.Sig = s.sign(c)
	return c
}

// Delegate mints an indirected capability under parent (possibly with
// restricted rights); revoking the parent severs every descendant.
func (s *ChainService) Delegate(parent *ChainCap, rights string) *ChainCap {
	s.nextID++
	c := &ChainCap{ID: s.nextID, Parent: parent, Rights: rights}
	c.Sig = s.sign(c)
	return c
}

// Revoke destroys one capability, severing the chains through it.
func (s *ChainService) Revoke(c *ChainCap) { s.revoked[c.ID] = true }

// Validate walks and checks the whole chain — O(depth) signature
// computations and revocation lookups.
func (s *ChainService) Validate(c *ChainCap) error {
	for link := c; link != nil; link = link.Parent {
		s.sigChecks++
		if !hmac.Equal(link.Sig, s.sign(link)) {
			return fmt.Errorf("baseline: bad signature on capability %d", link.ID)
		}
		if s.revoked[link.ID] {
			return ErrRevoked
		}
	}
	return nil
}

// SigChecks reports cumulative signature computations.
func (s *ChainService) SigChecks() uint64 { return s.sigChecks }

// ---- I-Cap style (Gong 1989) ----

// ICap is an identity-based capability: bound to a holder, checked by
// the issuer, revoked via an ever-growing invalid-capability list that
// is consulted on each access (§4.5's second approach).
type ICap struct {
	ID     uint64
	Holder string
	Rights string
	Sig    []byte
}

// ICapService issues and validates I-Caps.
type ICapService struct {
	secret  []byte
	nextID  uint64
	invalid map[uint64]bool // state about all *revoked* capabilities
}

// NewICapService creates an I-Cap issuer.
func NewICapService(secret []byte) *ICapService {
	return &ICapService{secret: secret, invalid: make(map[uint64]bool)}
}

func (s *ICapService) sign(c *ICap) []byte {
	m := hmac.New(sha256.New, s.secret)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], c.ID)
	m.Write(buf[:])
	m.Write([]byte(c.Holder))
	m.Write([]byte(c.Rights))
	return m.Sum(nil)[:16]
}

// Issue mints a capability for a holder.
func (s *ICapService) Issue(holder, rights string) *ICap {
	s.nextID++
	c := &ICap{ID: s.nextID, Holder: holder, Rights: rights}
	c.Sig = s.sign(c)
	return c
}

// Delegate re-issues for a new holder after consulting the issuer — the
// point of I-Cap is that delegation cannot bypass the service.
func (s *ICapService) Delegate(c *ICap, newHolder string) (*ICap, error) {
	if err := s.Validate(c, c.Holder); err != nil {
		return nil, err
	}
	return s.Issue(newHolder, c.Rights), nil
}

// Revoke adds the capability to the invalid list. The list grows
// without bound unless some complementary collection scheme exists
// (which [Gon89] leaves undefined, §4.5).
func (s *ICapService) Revoke(c *ICap) { s.invalid[c.ID] = true }

// InvalidListLen exposes the revocation-state growth.
func (s *ICapService) InvalidListLen() int { return len(s.invalid) }

// Validate checks binding, signature and the invalid list.
func (s *ICapService) Validate(c *ICap, holder string) error {
	if c.Holder != holder {
		return fmt.Errorf("baseline: capability bound to %q used by %q", c.Holder, holder)
	}
	if !hmac.Equal(c.Sig, s.sign(c)) {
		return errors.New("baseline: bad signature")
	}
	if s.invalid[c.ID] {
		return ErrRevoked
	}
	return nil
}

// ---- Refresh-based validity ([LABW94]-style leases) ----

// Lease is a short-lived credential that must be refreshed continually.
type Lease struct {
	ID     uint64
	Expiry time.Time
}

// LeaseService issues and refreshes leases. Revocation is implicit:
// stop honouring refreshes and wait out the lease — revocation latency
// is bounded by the lease length, and background traffic is one refresh
// per credential per period even when nothing changes (§4.14's point).
type LeaseService struct {
	clk     clock.Clock
	ttl     time.Duration
	nextID  uint64
	blocked map[uint64]bool
	// Refreshes counts background messages.
	Refreshes uint64
}

// NewLeaseService creates a lease issuer with the given lease length.
func NewLeaseService(clk clock.Clock, ttl time.Duration) *LeaseService {
	return &LeaseService{clk: clk, ttl: ttl, blocked: make(map[uint64]bool)}
}

// Issue grants a lease.
func (s *LeaseService) Issue() *Lease {
	s.nextID++
	return &Lease{ID: s.nextID, Expiry: s.clk.Now().Add(s.ttl)}
}

// Refresh extends a lease; a blocked lease is not renewed.
func (s *LeaseService) Refresh(l *Lease) error {
	s.Refreshes++
	if s.blocked[l.ID] {
		return ErrRevoked
	}
	l.Expiry = s.clk.Now().Add(s.ttl)
	return nil
}

// Revoke stops future refreshes; existing holders keep access until the
// lease runs out (the latency OASIS's event-driven revocation avoids).
func (s *LeaseService) Revoke(l *Lease) { s.blocked[l.ID] = true }

// Valid checks the lease clock.
func (s *LeaseService) Valid(l *Lease) bool {
	return s.clk.Now().Before(l.Expiry)
}
