package baseline

import (
	"errors"
	"testing"
	"time"

	"oasis/internal/clock"
)

func TestChainDelegationAndRevocation(t *testing.T) {
	s := NewChainService([]byte("k"))
	root := s.Issue("rw")
	c2 := s.Delegate(root, "rw")
	c3 := s.Delegate(c2, "r")
	if err := s.Validate(c3); err != nil {
		t.Fatal(err)
	}
	// Figure 4.4: destroying the shaded capability cuts off 2 and 3.
	s.Revoke(c2)
	if err := s.Validate(c2); !errors.Is(err, ErrRevoked) {
		t.Fatalf("c2: %v", err)
	}
	if err := s.Validate(c3); !errors.Is(err, ErrRevoked) {
		t.Fatalf("c3: %v", err)
	}
	if err := s.Validate(root); err != nil {
		t.Fatalf("root: %v", err)
	}
}

func TestChainValidationCostGrowsWithDepth(t *testing.T) {
	s := NewChainService([]byte("k"))
	c := s.Issue("rw")
	for i := 0; i < 9; i++ {
		c = s.Delegate(c, "rw")
	}
	before := s.SigChecks()
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	if got := s.SigChecks() - before; got != 10 {
		t.Fatalf("validation of depth-10 chain cost %d checks, want 10", got)
	}
}

func TestChainForgeryDetected(t *testing.T) {
	s := NewChainService([]byte("k"))
	c := s.Issue("r")
	c.Rights = "rw"
	if err := s.Validate(c); err == nil {
		t.Fatal("amplified rights accepted")
	}
}

func TestICapBindingAndRevocation(t *testing.T) {
	s := NewICapService([]byte("k"))
	c := s.Issue("alice", "rw")
	if err := s.Validate(c, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(c, "bob"); err == nil {
		t.Fatal("capability used by wrong holder")
	}
	d, err := s.Delegate(c, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(d, "bob"); err != nil {
		t.Fatal(err)
	}
	s.Revoke(c)
	if err := s.Validate(c, "alice"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked: %v", err)
	}
	// Independent delegated copy survives (no cascade in I-Cap).
	if err := s.Validate(d, "bob"); err != nil {
		t.Fatalf("delegate after parent revocation: %v", err)
	}
}

func TestICapRevocationListGrows(t *testing.T) {
	// §4.5: state must be stored for all revoked capabilities forever.
	s := NewICapService([]byte("k"))
	for i := 0; i < 100; i++ {
		s.Revoke(s.Issue("u", "r"))
	}
	if s.InvalidListLen() != 100 {
		t.Fatalf("invalid list = %d", s.InvalidListLen())
	}
	if _, err := s.Delegate(&ICap{Holder: "x"}, "y"); err == nil {
		t.Fatal("delegation of invalid capability accepted")
	}
}

func TestLeaseRefreshAndRevocationLatency(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := NewLeaseService(clk, 10*time.Second)
	l := s.Issue()
	if !s.Valid(l) {
		t.Fatal("fresh lease invalid")
	}
	clk.Advance(8 * time.Second)
	if err := s.Refresh(l); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second)
	if !s.Valid(l) {
		t.Fatal("refreshed lease expired early")
	}
	// Revocation takes effect only when the lease runs out.
	s.Revoke(l)
	if !s.Valid(l) {
		t.Fatal("lease-based revocation was instant (should have latency)")
	}
	if err := s.Refresh(l); !errors.Is(err, ErrRevoked) {
		t.Fatalf("refresh after revoke: %v", err)
	}
	clk.Advance(11 * time.Second)
	if s.Valid(l) {
		t.Fatal("lease survived past expiry")
	}
	if s.Refreshes != 2 {
		t.Fatalf("refreshes = %d", s.Refreshes)
	}
}
